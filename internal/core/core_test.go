package core

import (
	"testing"
	"time"

	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/greylist"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
)

type env struct {
	net      *netsim.Network
	dns      *dnsserver.Server
	clock    *simtime.Sim
	resolver *dnsresolver.Resolver
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := &env{
		net:   netsim.New(),
		dns:   dnsserver.New(),
		clock: simtime.NewSim(simtime.Epoch),
	}
	e.resolver = dnsresolver.New(dnsresolver.Direct(e.dns), e.clock)
	e.resolver.DisableCache = true
	return e
}

func (e *env) deps() Deps {
	return Deps{Net: e.net, DNS: e.dns, Clock: e.clock}
}

func (e *env) deploy(t *testing.T, cfg Config) *Domain {
	t.Helper()
	d, err := New(cfg, e.deps())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func baseConfig(defense Defense) Config {
	return Config{
		Domain:      "foo.net",
		PrimaryIP:   "10.0.0.1",
		SecondaryIP: "10.0.0.2",
		Defense:     defense,
	}
}

func (e *env) send(from, to string) smtpclient.Receipt {
	dialer := &smtpclient.SimDialer{Net: e.net, LocalIP: "192.0.2.77"}
	return smtpclient.DeliverMX(e.resolver, dialer, "foo.net", smtpclient.Message{
		HeloName: "client.example",
		From:     from,
		To:       []string{to},
		Data:     []byte("Subject: t\r\n\r\nbody\r\n"),
	})
}

func TestUndefendedDomainAcceptsFirstAttempt(t *testing.T) {
	e := newEnv(t)
	d := e.deploy(t, baseConfig(DefenseNone))
	r := e.send("alice@sender.example", "bob@foo.net")
	if r.Outcome != smtpclient.Delivered {
		t.Fatalf("receipt = %+v", r)
	}
	if r.Host != d.PrimaryHost() {
		t.Fatalf("delivered via %s, want primary", r.Host)
	}
	if len(d.Inbox()) != 1 {
		t.Fatalf("inbox = %d", len(d.Inbox()))
	}
}

func TestNolistingPrimaryClosedSecondaryOpen(t *testing.T) {
	e := newEnv(t)
	d := e.deploy(t, baseConfig(DefenseNolisting))

	// The primary host's A record resolves but nothing listens on :25.
	hosts, err := e.resolver.LookupMX("foo.net")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 {
		t.Fatalf("MX hosts = %v", hosts)
	}
	if e.net.Listening(hosts[0].Addrs[0] + ":25") {
		t.Fatal("nolisted primary is listening")
	}
	if !e.net.Listening(hosts[1].Addrs[0] + ":25") {
		t.Fatal("secondary not listening")
	}

	// A compliant sender still delivers (via the secondary).
	r := e.send("alice@sender.example", "bob@foo.net")
	if r.Outcome != smtpclient.Delivered || r.Host != d.SecondaryHost() {
		t.Fatalf("receipt = %+v", r)
	}
	if got := d.Inbox(); len(got) != 1 || got[0].Host != d.SecondaryHost() {
		t.Fatalf("inbox = %+v", got)
	}
}

func TestGreylistingDefersThenAccepts(t *testing.T) {
	e := newEnv(t)
	cfg := baseConfig(DefenseGreylisting)
	cfg.GreylistPolicy = greylist.Policy{Threshold: 300 * time.Second, RetryWindow: 48 * time.Hour}
	d := e.deploy(t, cfg)

	r := e.send("alice@sender.example", "bob@foo.net")
	if r.Outcome != smtpclient.TransientFailure {
		t.Fatalf("first attempt = %+v, want transient", r)
	}
	if len(d.Deferrals()) == 0 {
		t.Fatal("no deferral recorded")
	}
	if len(d.Inbox()) != 0 {
		t.Fatal("message delivered on first attempt")
	}

	// Too-early retry is still deferred.
	e.clock.Advance(100 * time.Second)
	if r := e.send("alice@sender.example", "bob@foo.net"); r.Outcome != smtpclient.TransientFailure {
		t.Fatalf("early retry = %+v", r)
	}

	// Past the threshold the retry is accepted.
	e.clock.Advance(201 * time.Second)
	if r := e.send("alice@sender.example", "bob@foo.net"); r.Outcome != smtpclient.Delivered {
		t.Fatalf("late retry = %+v", r)
	}
	if len(d.Inbox()) != 1 {
		t.Fatalf("inbox = %d", len(d.Inbox()))
	}
}

func TestBothDefensesCompose(t *testing.T) {
	e := newEnv(t)
	cfg := baseConfig(DefenseBoth)
	cfg.GreylistPolicy = greylist.Policy{Threshold: 300 * time.Second, RetryWindow: 48 * time.Hour}
	d := e.deploy(t, cfg)

	// First attempt: walks past the dead primary, greylisted at the
	// secondary.
	r := e.send("alice@sender.example", "bob@foo.net")
	if r.Outcome != smtpclient.TransientFailure || r.Host != d.SecondaryHost() {
		t.Fatalf("first attempt = %+v", r)
	}
	e.clock.Advance(301 * time.Second)
	if r := e.send("alice@sender.example", "bob@foo.net"); r.Outcome != smtpclient.Delivered {
		t.Fatalf("retry = %+v", r)
	}
}

func TestUnknownRecipientRejectedBeforeGreylisting(t *testing.T) {
	e := newEnv(t)
	cfg := baseConfig(DefenseGreylisting)
	cfg.Users = []string{"bob"}
	d := e.deploy(t, cfg)

	r := e.send("probe@scanner.example", "doesnotexist@foo.net")
	if r.Outcome != smtpclient.PermanentFailure {
		t.Fatalf("unknown recipient = %+v, want permanent 550", r)
	}
	// Crucially: no greylist record was created — the scanner learned
	// nothing about greylisting (Section II's measurability argument).
	if got := d.Greylister().PendingCount(); got != 0 {
		t.Fatalf("greylist pending = %d, want 0", got)
	}
	if len(d.Rejections()) != 1 || d.Rejections()[0].Code != 550 {
		t.Fatalf("rejections = %+v", d.Rejections())
	}
}

func TestValidRecipientStillGreylisted(t *testing.T) {
	e := newEnv(t)
	cfg := baseConfig(DefenseGreylisting)
	cfg.Users = []string{"bob"}
	e.deploy(t, cfg)
	if r := e.send("a@b.example", "bob@foo.net"); r.Outcome != smtpclient.TransientFailure {
		t.Fatalf("valid recipient = %+v, want greylisted", r)
	}
}

func TestUnprotectedRecipientBypassesGreylisting(t *testing.T) {
	// The paper's control addresses: postmaster is left unprotected so
	// the same campaign can be observed without greylisting.
	e := newEnv(t)
	cfg := baseConfig(DefenseGreylisting)
	cfg.UnprotectedRecipients = []string{"postmaster"}
	d := e.deploy(t, cfg)

	r := e.send("bot@spam.example", "postmaster@foo.net")
	if r.Outcome != smtpclient.Delivered {
		t.Fatalf("postmaster delivery = %+v, want immediate accept", r)
	}
	if r2 := e.send("bot@spam.example", "bob@foo.net"); r2.Outcome != smtpclient.TransientFailure {
		t.Fatalf("protected user = %+v, want deferred", r2)
	}
	if got := d.InboxTo("postmaster@foo.net"); len(got) != 1 {
		t.Fatalf("InboxTo = %+v", got)
	}
}

func TestRelayDenied(t *testing.T) {
	e := newEnv(t)
	e.deploy(t, baseConfig(DefenseNone))
	r := e.send("a@b.example", "victim@other-domain.example")
	if r.Outcome != smtpclient.PermanentFailure {
		t.Fatalf("relay attempt = %+v, want 550", r)
	}
}

func TestSingleMXDomain(t *testing.T) {
	e := newEnv(t)
	cfg := Config{Domain: "foo.net", PrimaryIP: "10.0.0.1", Defense: DefenseNone}
	d := e.deploy(t, cfg)
	if d.SecondaryHost() != "" {
		t.Fatalf("secondary = %q", d.SecondaryHost())
	}
	if got := len(d.MXHosts()); got != 1 {
		t.Fatalf("MX hosts = %d", got)
	}
	if r := e.send("a@b.example", "bob@foo.net"); r.Outcome != smtpclient.Delivered {
		t.Fatalf("receipt = %+v", r)
	}
}

func TestConfigValidation(t *testing.T) {
	e := newEnv(t)
	cases := []Config{
		{},                  // empty domain
		{Domain: "foo.net"}, // no primary IP
		{Domain: "foo.net", PrimaryIP: "10.0.0.1", Defense: DefenseNolisting}, // nolisting needs secondary
	}
	for i, cfg := range cases {
		if _, err := New(cfg, e.deps()); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
	if _, err := New(baseConfig(DefenseNone), Deps{}); err == nil {
		t.Error("New accepted empty deps")
	}
}

func TestDefenseStringsAndPredicates(t *testing.T) {
	if DefenseNone.String() != "none" || DefenseBoth.String() != "nolisting+greylisting" {
		t.Error("Defense.String broken")
	}
	if DefenseNone.Nolisting() || DefenseNone.Greylisting() {
		t.Error("DefenseNone predicates")
	}
	if !DefenseBoth.Nolisting() || !DefenseBoth.Greylisting() {
		t.Error("DefenseBoth predicates")
	}
	if !DefenseNolisting.Nolisting() || DefenseNolisting.Greylisting() {
		t.Error("DefenseNolisting predicates")
	}
}

func TestClearLogsKeepsGreylistState(t *testing.T) {
	e := newEnv(t)
	cfg := baseConfig(DefenseGreylisting)
	d := e.deploy(t, cfg)
	e.send("a@b.example", "bob@foo.net")
	// The MX walk hits both the primary and the secondary, and both
	// share the greylister, so a single send records two deferrals.
	if len(d.Deferrals()) != 2 {
		t.Fatalf("deferrals = %d, want 2 (one per MX host walked)", len(d.Deferrals()))
	}
	d.ClearLogs()
	if len(d.Deferrals()) != 0 || len(d.Inbox()) != 0 {
		t.Fatal("logs not cleared")
	}
	// Greylist state survived: retry after threshold passes.
	e.clock.Advance(301 * time.Second)
	if r := e.send("a@b.example", "bob@foo.net"); r.Outcome != smtpclient.Delivered {
		t.Fatalf("retry after ClearLogs = %+v", r)
	}
}

func TestCloseRemovesZoneAndListeners(t *testing.T) {
	e := newEnv(t)
	d, err := New(baseConfig(DefenseNone), e.deps())
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := e.resolver.LookupMX("foo.net"); err == nil {
		t.Fatal("zone still resolvable after Close")
	}
	if e.net.Listening("10.0.0.1:25") {
		t.Fatal("listener still bound after Close")
	}
	// The address can be reused by a fresh deployment.
	d2 := e.deploy(t, baseConfig(DefenseNone))
	_ = d2
}

func TestShardedGreylistEngine(t *testing.T) {
	e := newEnv(t)
	cfg := baseConfig(DefenseGreylisting)
	cfg.GreylistShards = 8
	d := e.deploy(t, cfg)

	if r := e.send("a@b.example", "bob@foo.net"); r.Outcome != smtpclient.TransientFailure {
		t.Fatalf("first = %+v", r)
	}
	e.clock.Advance(301 * time.Second)
	if r := e.send("a@b.example", "bob@foo.net"); r.Outcome != smtpclient.Delivered {
		t.Fatalf("retry = %+v", r)
	}
	if _, ok := d.Greylister().(*greylist.Sharded); !ok {
		t.Fatalf("engine = %T, want *greylist.Sharded", d.Greylister())
	}
}
