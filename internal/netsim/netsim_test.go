package netsim

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestDialAndEcho(t *testing.T) {
	n := New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer c.Close()
		io.Copy(c, c) // echo
	}()

	c, err := n.Dial("192.168.1.5:40000", "10.0.0.1:25")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	msg := "HELO example.org\r\n"
	go func() {
		c.Write([]byte(msg))
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if string(buf) != msg {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
	c.Close()
	wg.Wait()
}

func TestDialRefusedWhenNoListener(t *testing.T) {
	n := New()
	_, err := n.Dial("192.168.1.5:40000", "10.0.0.1:25")
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("Dial error = %v, want ErrConnRefused", err)
	}
}

func TestDialRefusedOnWrongPort(t *testing.T) {
	// A nolisted primary MX: the host exists (listener on another port)
	// but port 25 is closed.
	n := New()
	l, err := n.Listen("10.0.0.1:80")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	_, err = n.Dial("192.168.1.5:40000", "10.0.0.1:25")
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("Dial to closed port = %v, want ErrConnRefused", err)
	}
}

func TestHostDownUnreachable(t *testing.T) {
	n := New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	n.SetHostDown("10.0.0.1", true)
	if !n.HostDown("10.0.0.1") {
		t.Fatal("HostDown = false after SetHostDown(true)")
	}
	_, err = n.Dial("192.168.1.5:40000", "10.0.0.1:25")
	if !errors.Is(err, ErrHostUnreachable) {
		t.Fatalf("Dial to down host = %v, want ErrHostUnreachable", err)
	}
	// Recovery: the listener is still bound.
	n.SetHostDown("10.0.0.1", false)
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := n.Dial("192.168.1.5:40001", "10.0.0.1:25")
	if err != nil {
		t.Fatalf("Dial after recovery: %v", err)
	}
	c.Close()
}

func TestListenDuplicateAddr(t *testing.T) {
	n := New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	if _, err := n.Listen("10.0.0.1:25"); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("second Listen = %v, want ErrAddrInUse", err)
	}
}

func TestListenBadAddress(t *testing.T) {
	n := New()
	if _, err := n.Listen("not-an-address"); err == nil {
		t.Fatal("Listen on malformed address succeeded")
	}
	if _, err := n.Dial("1.2.3.4:1", "not-an-address"); err == nil {
		t.Fatal("Dial to malformed address succeeded")
	}
}

func TestCloseUnbindsAndRefuses(t *testing.T) {
	n := New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	l.Close()
	if _, err := n.Dial("192.168.1.5:40000", "10.0.0.1:25"); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("Dial after Close = %v, want ErrConnRefused", err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrListenerClosed) {
		t.Fatalf("Accept after Close = %v, want ErrListenerClosed", err)
	}
	// Close is idempotent and the address can be rebound.
	l.Close()
	l2, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatalf("re-Listen after Close: %v", err)
	}
	l2.Close()
}

func TestConnAddrs(t *testing.T) {
	n := New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	srvConn := make(chan struct {
		local, remote string
	}, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		srvConn <- struct{ local, remote string }{c.LocalAddr().String(), c.RemoteAddr().String()}
		c.Close()
	}()
	c, err := n.Dial("192.168.1.5:40000", "10.0.0.1:25")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if got := c.LocalAddr().String(); got != "192.168.1.5:40000" {
		t.Errorf("client LocalAddr = %q", got)
	}
	if got := c.RemoteAddr().String(); got != "10.0.0.1:25" {
		t.Errorf("client RemoteAddr = %q", got)
	}
	s := <-srvConn
	if s.local != "10.0.0.1:25" || s.remote != "192.168.1.5:40000" {
		t.Errorf("server addrs = %+v", s)
	}
	if got := Addr("10.0.0.1:25").Host(); got != "10.0.0.1" {
		t.Errorf("Addr.Host = %q", got)
	}
	if got := Addr("garbage").Host(); got != "" {
		t.Errorf("Addr.Host on garbage = %q, want empty", got)
	}
}

func TestListeningProbe(t *testing.T) {
	n := New()
	if n.Listening("10.0.0.1:25") {
		t.Fatal("Listening true with no listener")
	}
	l, _ := n.Listen("10.0.0.1:25")
	if !n.Listening("10.0.0.1:25") {
		t.Fatal("Listening false with bound listener")
	}
	n.SetHostDown("10.0.0.1", true)
	if n.Listening("10.0.0.1:25") {
		t.Fatal("Listening true while host down")
	}
	n.SetHostDown("10.0.0.1", false)
	l.Close()
	if n.Listening("10.0.0.1:25") {
		t.Fatal("Listening true after Close")
	}
	if n.Listening("garbage") {
		t.Fatal("Listening true for malformed address")
	}
}

func TestStatsCountRefusals(t *testing.T) {
	n := New()
	for i := 0; i < 3; i++ {
		n.Dial("1.1.1.1:1", "2.2.2.2:25")
	}
	dials, refused := n.Stats()
	if dials != 3 || refused != 3 {
		t.Fatalf("Stats = (%d, %d), want (3, 3)", dials, refused)
	}
}

func TestConcurrentDials(t *testing.T) {
	n := New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	const workers = 32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < workers; i++ {
			c, err := l.Accept()
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			c.Write([]byte("220\r\n"))
			c.Close()
		}
	}()
	var cwg sync.WaitGroup
	for i := 0; i < workers; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			c, err := n.Dial(fmt.Sprintf("192.168.0.%d:5000", i+1), "10.0.0.1:25")
			if err != nil {
				t.Errorf("Dial %d: %v", i, err)
				return
			}
			buf := make([]byte, 5)
			io.ReadFull(c, buf)
			c.Close()
		}(i)
	}
	cwg.Wait()
	wg.Wait()
}

// stringSetOracle is a test DownOracle backed by a fixed host set.
type stringSetOracle map[string]bool

func (o stringSetOracle) HostDown(ip string) bool      { return o[ip] }
func (o stringSetOracle) HostDownBytes(ip []byte) bool { return o[string(ip)] }

func TestDownOracle(t *testing.T) {
	n := New()
	if _, err := n.Listen("10.0.0.1:25"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("10.0.0.2:25"); err != nil {
		t.Fatal(err)
	}
	n.SetDownOracle(stringSetOracle{"10.0.0.1": true})

	if n.Listening("10.0.0.1:25") {
		t.Error("oracle-down host reported listening")
	}
	if !n.Listening("10.0.0.2:25") {
		t.Error("oracle-up host reported not listening")
	}
	if !n.ListeningAddr([]byte("10.0.0.2:25")) {
		t.Error("ListeningAddr disagrees with Listening for up host")
	}
	if n.ListeningAddr([]byte("10.0.0.1:25")) {
		t.Error("ListeningAddr disagrees with Listening for oracle-down host")
	}
	if !n.HostDown("10.0.0.1") || n.HostDown("10.0.0.2") {
		t.Error("HostDown ignores the oracle")
	}
	if _, err := n.Dial("192.168.0.1:5000", "10.0.0.1:25"); !errors.Is(err, ErrHostUnreachable) {
		t.Errorf("dial to oracle-down host: %v, want ErrHostUnreachable", err)
	}

	// The oracle augments, never replaces, explicit flags.
	n.SetHostDown("10.0.0.2", true)
	if !n.HostDown("10.0.0.2") {
		t.Error("explicit down flag lost while oracle installed")
	}
	n.SetHostDown("10.0.0.2", false)

	n.SetDownOracle(nil)
	if n.HostDown("10.0.0.1") {
		t.Error("oracle downness survived removal")
	}
	if !n.Listening("10.0.0.1:25") {
		t.Error("host still down after oracle removed")
	}
}
