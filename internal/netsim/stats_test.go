package netsim

import (
	"errors"
	"sync"
	"testing"
)

// TestStatsAtomicUnderConcurrentDials hammers Dial from many goroutines
// while Stats is read concurrently: the atomic counters must never tear,
// go backwards, or lose a dial, and the final totals must be exact.
func TestStatsAtomicUnderConcurrentDials(t *testing.T) {
	n := New()
	if _, err := n.Listen("10.0.0.1:25"); err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		perG       = 500
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent reader: the counters are independent atomics (a reader
	// can see refusals from dials newer than its dials load), but each
	// must be monotonic and never torn.
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		var lastDials, lastRefused uint64
		for {
			dials, refused := n.Stats()
			if dials < lastDials || refused < lastRefused {
				t.Errorf("counters went backwards: %d/%d after %d/%d",
					dials, refused, lastDials, lastRefused)
				return
			}
			lastDials, lastRefused = dials, refused
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Alternate a refused target with nothing listening and
				// a probe of the bound one (Listening doesn't dial).
				_, err := n.Dial("10.9.9.9:1000", "10.0.0.2:25")
				if !errors.Is(err, ErrConnRefused) {
					t.Errorf("dial dead target: %v", err)
					return
				}
				if !n.Listening("10.0.0.1:25") {
					t.Error("bound listener not seen")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	reader.Wait()

	dials, refused := n.Stats()
	want := uint64(goroutines * perG)
	if dials != want || refused != want {
		t.Errorf("Stats() = %d dials, %d refused; want %d of each", dials, refused, want)
	}
}
