// Package netsim provides an in-memory Internet for the experiments: hosts
// identified by IPv4 addresses, TCP-like listeners bound to ip:port, and
// dialing between them. Connections are synchronous net.Pipe pairs wrapped
// so that net.Conn.RemoteAddr reports the dialer's simulated IP — which is
// what the greylisting triplet and the SMTP server's logging key on.
//
// The simulation models the failure modes the paper's measurements depend
// on: a host with no listener on a port refuses connections (this is how a
// nolisted primary MX behaves: valid A record, port 25 closed), and a host
// marked down is unreachable (a malfunctioning server, indistinguishable
// from nolisting in scan data — exactly the ambiguity Section IV-A's
// two-scan methodology resolves).
//
// State is sharded by host hash (mirroring greylist.Sharded): every
// listener and down-flag of one host lives in the shard of that host, so
// the banner-grab workers and the parallel domain scanners of a
// paper-scale adoption study probe different hosts without contending on
// a process-wide lock. Dial/refusal counters are atomics, so Stats reads
// never contend with dials either.
package netsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Sentinel errors mirroring the failure modes of real TCP dialing.
var (
	// ErrConnRefused reports that the target host exists but nothing
	// listens on the port (RST in real TCP).
	ErrConnRefused = errors.New("netsim: connection refused")
	// ErrHostUnreachable reports that the target host is down.
	ErrHostUnreachable = errors.New("netsim: host unreachable")
	// ErrListenerClosed reports Accept on a closed listener.
	ErrListenerClosed = errors.New("netsim: listener closed")
	// ErrAddrInUse reports a second Listen on an already-bound address.
	ErrAddrInUse = errors.New("netsim: address already in use")
)

// shardCount is the number of host-hash shards. A power of two well above
// typical GOMAXPROCS keeps the probability of two busy workers colliding
// on one shard's lock low while the per-Network footprint stays small.
const shardCount = 64

// shard holds the listeners and down-flags of the hosts that hash to it.
// Read-mostly operations (Dial, Listening, HostDown) take the read lock.
type shard struct {
	mu        sync.RWMutex
	listeners map[string]*Listener // "ip:port" -> listener
	down      map[string]bool      // "ip" -> host marked down
}

// DownOracle derives host downness instead of materializing it. While
// one is installed (SetDownOracle), a host is unreachable when either
// its SetHostDown flag or the oracle says so — letting a paper-scale
// scan window impose millions of transient failures without writing a
// single down-map entry. Implementations must be safe for concurrent
// use and fast: the oracle sits on the dial and probe hot paths.
type DownOracle interface {
	// HostDown reports whether the host with the given IP is down.
	HostDown(ip string) bool
	// HostDownBytes is HostDown over a byte-slice IP, so probe loops
	// holding a scratch buffer never convert it to a string.
	HostDownBytes(ip []byte) bool
}

// Network is the in-memory Internet. The zero value is not usable; create
// one with New. All methods are safe for concurrent use.
type Network struct {
	shards  [shardCount]shard
	dials   atomic.Uint64
	refused atomic.Uint64
	oracle  atomic.Pointer[DownOracle]
}

// New returns an empty Network.
func New() *Network {
	n := &Network{}
	for i := range n.shards {
		n.shards[i].listeners = make(map[string]*Listener)
		n.shards[i].down = make(map[string]bool)
	}
	return n
}

// shardOf picks the shard owning host by FNV-1a hash — the same function
// the greylist engine shards by, inlined so no hasher is constructed.
func (n *Network) shardOf(host string) *shard {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for i := 0; i < len(host); i++ {
		h ^= uint32(host[i])
		h *= prime
	}
	return &n.shards[h%shardCount]
}

// shardOfBytes is shardOf over a byte slice, so probe paths holding a
// scratch buffer never convert it to a string.
func (n *Network) shardOfBytes(host []byte) *shard {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for _, c := range host {
		h ^= uint32(c)
		h *= prime
	}
	return &n.shards[h%shardCount]
}

// splitHost returns the IP part of "ip:port" without allocating, or ""
// for a malformed address. The simulation only ever uses plain
// "ipv4:port" forms, so scanning for the last colon is exact.
func splitHost(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return ""
}

// Listen binds a listener to addr ("ip:port"). It fails if the address is
// already bound.
func (n *Network) Listen(address string) (*Listener, error) {
	host, _, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %q: %w", address, err)
	}
	sh := n.shardOf(host)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.listeners[address]; ok {
		return nil, fmt.Errorf("netsim: listen %q: %w", address, ErrAddrInUse)
	}
	l := &Listener{
		net:    n,
		addr:   Addr(address),
		host:   host,
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	sh.listeners[address] = l
	return l, nil
}

// Dial opens a connection from laddr (the caller's simulated "ip:port",
// typically with an ephemeral port) to raddr. It fails with
// ErrHostUnreachable if the target host is down and ErrConnRefused if no
// listener is bound to raddr.
func (n *Network) Dial(laddr, raddr string) (net.Conn, error) {
	return n.DialTrace(laddr, raddr, nil)
}

// DialTrace is Dial with the caller's trace attached: the dial outcome
// is recorded as a trace event and — when the connection opens — both
// pipe endpoints carry the trace, so the accepting server's session
// records into the same per-attempt trace (trace.FromConn). A nil
// trace makes DialTrace identical to Dial.
func (n *Network) DialTrace(laddr, raddr string, tr *trace.Trace) (net.Conn, error) {
	rhost, _, err := net.SplitHostPort(raddr)
	if err != nil {
		err = fmt.Errorf("netsim: dial %q: %w", raddr, err)
		tr.Dial(raddr, err)
		return nil, err
	}
	n.dials.Add(1)
	sh := n.shardOf(rhost)
	sh.mu.RLock()
	if sh.down[rhost] || n.oracleDown(rhost) {
		sh.mu.RUnlock()
		err = fmt.Errorf("netsim: dial %s: %w", raddr, ErrHostUnreachable)
		tr.Dial(raddr, err)
		return nil, err
	}
	l, ok := sh.listeners[raddr]
	sh.mu.RUnlock()
	if !ok {
		n.refused.Add(1)
		err = fmt.Errorf("netsim: dial %s: %w", raddr, ErrConnRefused)
		tr.Dial(raddr, err)
		return nil, err
	}

	cc, sc := net.Pipe()
	client := &conn{Conn: cc, local: Addr(laddr), remote: Addr(raddr), tr: tr}
	server := &conn{Conn: sc, local: Addr(raddr), remote: Addr(laddr), tr: tr}
	select {
	case l.accept <- server:
		tr.Dial(raddr, nil)
		return client, nil
	case <-l.done:
		cc.Close()
		sc.Close()
		err = fmt.Errorf("netsim: dial %s: %w", raddr, ErrConnRefused)
		tr.Dial(raddr, err)
		return nil, err
	}
}

// SetDownOracle installs (or, with nil, removes) a derived-downness
// oracle. The oracle augments — never replaces — the explicit
// SetHostDown flags.
func (n *Network) SetDownOracle(o DownOracle) {
	if o == nil {
		n.oracle.Store(nil)
		return
	}
	n.oracle.Store(&o)
}

// oracleDown consults the installed oracle, if any, for a string host.
func (n *Network) oracleDown(host string) bool {
	p := n.oracle.Load()
	return p != nil && (*p).HostDown(host)
}

// oracleDownBytes consults the installed oracle for a byte-slice host.
func (n *Network) oracleDownBytes(host []byte) bool {
	p := n.oracle.Load()
	return p != nil && (*p).HostDownBytes(host)
}

// SetHostDown marks every port of the host with the given IP unreachable
// (down=true) or reachable again (down=false). Listeners stay bound; a host
// coming back up resumes accepting.
func (n *Network) SetHostDown(ip string, isDown bool) {
	sh := n.shardOf(ip)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if isDown {
		sh.down[ip] = true
	} else {
		delete(sh.down, ip)
	}
}

// HostDown reports whether the host is currently marked down, either
// explicitly or by the installed oracle.
func (n *Network) HostDown(ip string) bool {
	sh := n.shardOf(ip)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.down[ip] || n.oracleDown(ip)
}

// Listening reports whether any listener is bound to addr and its host is
// up. This is the primitive behind the SMTP banner-grab scanner: a SYN to
// port 25 succeeds exactly when Listening is true.
func (n *Network) Listening(addr string) bool {
	host := splitHost(addr)
	if host == "" {
		return false
	}
	sh := n.shardOf(host)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.down[host] || n.oracleDown(host) {
		return false
	}
	_, ok := sh.listeners[addr]
	return ok
}

// ListeningAddr is Listening over a byte-slice address, for probe loops
// that build "ip:port" in a reused scratch buffer: the map lookups use
// the m[string(b)] form, so a paper-scale banner grab probes without
// allocating a string per target.
func (n *Network) ListeningAddr(addr []byte) bool {
	hostLen := -1
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			hostLen = i
			break
		}
	}
	if hostLen <= 0 {
		return false
	}
	sh := n.shardOfBytes(addr[:hostLen])
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.down[string(addr[:hostLen])] || n.oracleDownBytes(addr[:hostLen]) {
		return false
	}
	_, ok := sh.listeners[string(addr)]
	return ok
}

// Stats reports the total number of dial attempts and how many were
// refused. The counters are atomics; reading them never blocks dialers.
func (n *Network) Stats() (dials, refused uint64) {
	return n.dials.Load(), n.refused.Load()
}

func (n *Network) unbind(addr string, l *Listener) {
	sh := n.shardOf(l.host)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.listeners[addr] == l {
		delete(sh.listeners, addr)
	}
}

// Listener implements net.Listener over the simulated network.
type Listener struct {
	net    *Network
	addr   Addr
	host   string
	accept chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

var _ net.Listener = (*Listener)(nil)

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrListenerClosed
	}
}

// Close implements net.Listener. Closing unbinds the address; subsequent
// dials are refused.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.unbind(string(l.addr), l)
	})
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

// Addr is a simulated network address ("ip:port").
type Addr string

var _ net.Addr = Addr("")

// Network implements net.Addr.
func (Addr) Network() string { return "sim" }

// String implements net.Addr.
func (a Addr) String() string { return string(a) }

// Host returns the IP part of the address, or "" if malformed.
func (a Addr) Host() string {
	h, _, err := net.SplitHostPort(string(a))
	if err != nil {
		return ""
	}
	return h
}

// conn wraps a net.Pipe endpoint with simulated addresses and the
// dialer's trace (nil when tracing is off).
type conn struct {
	net.Conn
	local, remote Addr
	tr            *trace.Trace
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return c.remote }

// Trace implements trace.Carrier: the server side of a simulated
// connection retrieves the dialing client's trace handle and records
// its own spans (SMTP verbs, greylist verdicts) into the same trace.
func (c *conn) Trace() *trace.Trace { return c.tr }

var _ trace.Carrier = (*conn)(nil)
