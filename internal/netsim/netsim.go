// Package netsim provides an in-memory Internet for the experiments: hosts
// identified by IPv4 addresses, TCP-like listeners bound to ip:port, and
// dialing between them. Connections are synchronous net.Pipe pairs wrapped
// so that net.Conn.RemoteAddr reports the dialer's simulated IP — which is
// what the greylisting triplet and the SMTP server's logging key on.
//
// The simulation models the failure modes the paper's measurements depend
// on: a host with no listener on a port refuses connections (this is how a
// nolisted primary MX behaves: valid A record, port 25 closed), and a host
// marked down is unreachable (a malfunctioning server, indistinguishable
// from nolisting in scan data — exactly the ambiguity Section IV-A's
// two-scan methodology resolves).
package netsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Sentinel errors mirroring the failure modes of real TCP dialing.
var (
	// ErrConnRefused reports that the target host exists but nothing
	// listens on the port (RST in real TCP).
	ErrConnRefused = errors.New("netsim: connection refused")
	// ErrHostUnreachable reports that the target host is down.
	ErrHostUnreachable = errors.New("netsim: host unreachable")
	// ErrListenerClosed reports Accept on a closed listener.
	ErrListenerClosed = errors.New("netsim: listener closed")
	// ErrAddrInUse reports a second Listen on an already-bound address.
	ErrAddrInUse = errors.New("netsim: address already in use")
)

// Network is the in-memory Internet. The zero value is not usable; create
// one with New. All methods are safe for concurrent use.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	down      map[string]bool
	dials     uint64
	refused   uint64
}

// New returns an empty Network.
func New() *Network {
	return &Network{
		listeners: make(map[string]*Listener),
		down:      make(map[string]bool),
	}
}

// Listen binds a listener to addr ("ip:port"). It fails if the address is
// already bound.
func (n *Network) Listen(address string) (*Listener, error) {
	host, _, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %q: %w", address, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[address]; ok {
		return nil, fmt.Errorf("netsim: listen %q: %w", address, ErrAddrInUse)
	}
	l := &Listener{
		net:    n,
		addr:   Addr(address),
		host:   host,
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	n.listeners[address] = l
	return l, nil
}

// Dial opens a connection from laddr (the caller's simulated "ip:port",
// typically with an ephemeral port) to raddr. It fails with
// ErrHostUnreachable if the target host is down and ErrConnRefused if no
// listener is bound to raddr.
func (n *Network) Dial(laddr, raddr string) (net.Conn, error) {
	rhost, _, err := net.SplitHostPort(raddr)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %q: %w", raddr, err)
	}
	n.mu.Lock()
	n.dials++
	if n.down[rhost] {
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: dial %s: %w", raddr, ErrHostUnreachable)
	}
	l, ok := n.listeners[raddr]
	if !ok {
		n.refused++
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: dial %s: %w", raddr, ErrConnRefused)
	}
	n.mu.Unlock()

	cc, sc := net.Pipe()
	client := &conn{Conn: cc, local: Addr(laddr), remote: Addr(raddr)}
	server := &conn{Conn: sc, local: Addr(raddr), remote: Addr(laddr)}
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		cc.Close()
		sc.Close()
		return nil, fmt.Errorf("netsim: dial %s: %w", raddr, ErrConnRefused)
	}
}

// SetHostDown marks every port of the host with the given IP unreachable
// (down=true) or reachable again (down=false). Listeners stay bound; a host
// coming back up resumes accepting.
func (n *Network) SetHostDown(ip string, isDown bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if isDown {
		n.down[ip] = true
	} else {
		delete(n.down, ip)
	}
}

// HostDown reports whether the host is currently marked down.
func (n *Network) HostDown(ip string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[ip]
}

// Listening reports whether any listener is bound to addr and its host is
// up. This is the primitive behind the SMTP banner-grab scanner: a SYN to
// port 25 succeeds exactly when Listening is true.
func (n *Network) Listening(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[host] {
		return false
	}
	_, ok := n.listeners[addr]
	return ok
}

// Stats reports the total number of dial attempts and how many were refused.
func (n *Network) Stats() (dials, refused uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dials, n.refused
}

func (n *Network) unbind(addr string, l *Listener) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listeners[addr] == l {
		delete(n.listeners, addr)
	}
}

// Listener implements net.Listener over the simulated network.
type Listener struct {
	net    *Network
	addr   Addr
	host   string
	accept chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

var _ net.Listener = (*Listener)(nil)

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrListenerClosed
	}
}

// Close implements net.Listener. Closing unbinds the address; subsequent
// dials are refused.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.unbind(string(l.addr), l)
	})
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

// Addr is a simulated network address ("ip:port").
type Addr string

var _ net.Addr = Addr("")

// Network implements net.Addr.
func (Addr) Network() string { return "sim" }

// String implements net.Addr.
func (a Addr) String() string { return string(a) }

// Host returns the IP part of the address, or "" if malformed.
func (a Addr) Host() string {
	h, _, err := net.SplitHostPort(string(a))
	if err != nil {
		return ""
	}
	return h
}

// conn wraps a net.Pipe endpoint with simulated addresses.
type conn struct {
	net.Conn
	local, remote Addr
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return c.remote }
