// Package dnsbl implements a DNS-based blackhole list (the blacklists of
// the paper's related work [11][23][28]) and the experiment behind one of
// the paper's untested claims. Section II, quoting greylisting's
// supporters: "even when ineffective, greylisting would still be useful
// because the delay introduced in the delivery of spam messages can be
// enough for the sender ... to be detected and added into popular spammer
// blacklists — therefore still helping to prevent the final delivery of
// the spam message."
//
// The protocol is the real one: a client checks address a.b.c.d by
// querying the A record of d.c.b.a.<zone>; an answer (conventionally
// 127.0.0.2) means listed, NXDOMAIN means clean. The List here is backed
// by the reproduction's authoritative DNS server, so the checks travel
// through the same wire format as everything else.
//
// Synergy runs the experiment: a Kelihos-style retrying bot against
// greylisting, with a spamtrap feeding the DNSBL at a configurable
// listing latency. If the blacklist lists the bot before its
// greylisting-beating retry arrives, the retry is rejected outright —
// greylisting's delay converted spam into a permanent block.
package dnsbl

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/simtime"
)

// ListedAddr is the conventional DNSBL "listed" answer.
var ListedAddr = dnsmsg.MustIPv4("127.0.0.2")

// ReverseIPv4 converts "203.0.113.9" to "9.113.0.203" (the DNSBL query
// label order).
func ReverseIPv4(ip string) (string, error) {
	if _, err := dnsmsg.ParseIPv4(ip); err != nil {
		return "", fmt.Errorf("dnsbl: %w", err)
	}
	parts := strings.Split(ip, ".")
	return parts[3] + "." + parts[2] + "." + parts[1] + "." + parts[0], nil
}

// List is a DNSBL zone: Add/Remove manage listings, and the zone answers
// standard DNSBL queries through the attached dnsserver.Server.
type List struct {
	origin string
	zone   *dnsserver.Zone
	clock  simtime.Clock

	mu     sync.Mutex
	listed map[string]time.Time
}

// New creates a DNSBL under the given origin (e.g. "bl.example") and
// registers its zone with dns.
func New(origin string, dns *dnsserver.Server, clock simtime.Clock) *List {
	if clock == nil {
		clock = simtime.Real{}
	}
	l := &List{
		origin: dnsmsg.CanonicalName(origin),
		zone:   dnsserver.NewZone(origin),
		clock:  clock,
		listed: make(map[string]time.Time),
	}
	dns.AddZone(l.zone)
	return l
}

// Origin returns the blacklist's DNS origin.
func (l *List) Origin() string { return l.origin }

// Add lists an address.
func (l *List) Add(ip string) error {
	rev, err := ReverseIPv4(ip)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.listed[ip]; ok {
		return nil
	}
	l.listed[ip] = l.clock.Now()
	return l.zone.Add(dnsmsg.RR{
		Name: rev + "." + l.origin, Type: dnsmsg.TypeA, TTL: 300, Data: ListedAddr,
	})
}

// Remove delists an address.
func (l *List) Remove(ip string) error {
	rev, err := ReverseIPv4(ip)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.listed, ip)
	l.zone.Remove(rev+"."+l.origin, dnsmsg.TypeA)
	return nil
}

// Contains reports a listing (local check, no DNS).
func (l *List) Contains(ip string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.listed[ip]
	return ok
}

// Size reports the number of listed addresses.
func (l *List) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.listed)
}

// Lookup performs the standard client-side DNSBL check through a
// resolver: listed == the reversed name resolves.
func Lookup(res *dnsresolver.Resolver, origin, ip string) (bool, error) {
	rev, err := ReverseIPv4(ip)
	if err != nil {
		return false, err
	}
	addrs, err := res.LookupA(rev + "." + dnsmsg.CanonicalName(origin))
	if err != nil {
		// NXDOMAIN (or NODATA) means "not listed".
		return false, nil
	}
	return len(addrs) > 0, nil
}

// Trap is a spamtrap feed: reported client addresses are listed after the
// feed's processing latency (detection, aggregation, publication — the
// realistic delay the synergy hinges on).
type Trap struct {
	list    *List
	sched   *simtime.Scheduler
	latency time.Duration

	mu       sync.Mutex
	reported map[string]bool
}

// NewTrap builds a trap feeding list with the given listing latency.
func NewTrap(list *List, sched *simtime.Scheduler, latency time.Duration) *Trap {
	return &Trap{list: list, sched: sched, latency: latency, reported: make(map[string]bool)}
}

// Report schedules the listing of ip after the feed latency. Duplicate
// reports are ignored.
func (t *Trap) Report(ip string) {
	t.mu.Lock()
	if t.reported[ip] {
		t.mu.Unlock()
		return
	}
	t.reported[ip] = true
	t.mu.Unlock()
	t.sched.After(t.latency, "dnsbl listing", func() {
		t.list.Add(ip)
	})
}

// Reported reports whether ip has already been fed to the trap.
func (t *Trap) Reported(ip string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reported[ip]
}
