// Package dnsbl implements a DNS-based blackhole list (the blacklists of
// the paper's related work [11][23][28]) and the experiment behind one of
// the paper's untested claims. Section II, quoting greylisting's
// supporters: "even when ineffective, greylisting would still be useful
// because the delay introduced in the delivery of spam messages can be
// enough for the sender ... to be detected and added into popular spammer
// blacklists — therefore still helping to prevent the final delivery of
// the spam message."
//
// The protocol is the real one: a client checks address a.b.c.d by
// querying the A record of d.c.b.a.<zone>; an answer (conventionally
// 127.0.0.2) means listed, NXDOMAIN means clean. The List here is backed
// by the reproduction's authoritative DNS server, so the checks travel
// through the same wire format as everything else.
//
// Synergy runs the experiment: a Kelihos-style retrying bot against
// greylisting, with a spamtrap feeding the DNSBL at a configurable
// listing latency. If the blacklist lists the bot before its
// greylisting-beating retry arrives, the retry is rejected outright —
// greylisting's delay converted spam into a permanent block.
package dnsbl

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/simtime"
)

// ListedAddr is the conventional DNSBL "listed" answer.
var ListedAddr = dnsmsg.MustIPv4("127.0.0.2")

// AppendReverseIPv4 appends "203.0.113.9" reversed to label order
// ("9.113.0.203") onto dst — the DNSBL (and in-addr.arpa) query prefix.
// With a caller-provided stack buffer the reversal allocates nothing;
// the old strings.Split implementation cost three allocations per
// query, which the lookup hot path of the bypass chain pays per RCPT.
func AppendReverseIPv4(dst []byte, ip string) ([]byte, error) {
	var octs [4]string
	rest := ip
	for i := 0; i < 4; i++ {
		dot := strings.IndexByte(rest, '.')
		switch {
		case i == 3:
			if dot >= 0 {
				return dst, fmt.Errorf("dnsbl: bad IPv4 address %q", ip)
			}
			octs[i] = rest
		case dot < 0:
			return dst, fmt.Errorf("dnsbl: bad IPv4 address %q", ip)
		default:
			octs[i], rest = rest[:dot], rest[dot+1:]
		}
		if !validOctet(octs[i]) {
			return dst, fmt.Errorf("dnsbl: bad IPv4 address %q", ip)
		}
	}
	dst = append(dst, octs[3]...)
	dst = append(dst, '.')
	dst = append(dst, octs[2]...)
	dst = append(dst, '.')
	dst = append(dst, octs[1]...)
	dst = append(dst, '.')
	dst = append(dst, octs[0]...)
	return dst, nil
}

// validOctet reports whether s is a decimal 0-255 without leading plus
// or minus signs (leading zeros are accepted, matching ParseIPv4).
func validOctet(s string) bool {
	if len(s) == 0 || len(s) > 3 {
		return false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return false
		}
		n = n*10 + int(c-'0')
	}
	return n <= 255
}

// ReverseIPv4 converts "203.0.113.9" to "9.113.0.203" (the DNSBL query
// label order).
func ReverseIPv4(ip string) (string, error) {
	var buf [16]byte
	rev, err := AppendReverseIPv4(buf[:0], ip)
	if err != nil {
		return "", err
	}
	return string(rev), nil
}

// List is a DNSBL zone: Add/Remove manage listings, and the zone answers
// standard DNSBL queries through the attached dnsserver.Server.
type List struct {
	origin string
	zone   *dnsserver.Zone
	clock  simtime.Clock

	mu     sync.Mutex
	listed map[string]time.Time
}

// New creates a DNSBL under the given origin (e.g. "bl.example") and
// registers its zone with dns.
func New(origin string, dns *dnsserver.Server, clock simtime.Clock) *List {
	if clock == nil {
		clock = simtime.Real{}
	}
	l := &List{
		origin: dnsmsg.CanonicalName(origin),
		zone:   dnsserver.NewZone(origin),
		clock:  clock,
		listed: make(map[string]time.Time),
	}
	dns.AddZone(l.zone)
	return l
}

// Origin returns the blacklist's DNS origin.
func (l *List) Origin() string { return l.origin }

// Add lists an address.
func (l *List) Add(ip string) error {
	rev, err := ReverseIPv4(ip)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.listed[ip]; ok {
		return nil
	}
	l.listed[ip] = l.clock.Now()
	return l.zone.Add(dnsmsg.RR{
		Name: rev + "." + l.origin, Type: dnsmsg.TypeA, TTL: 300, Data: ListedAddr,
	})
}

// Remove delists an address.
func (l *List) Remove(ip string) error {
	rev, err := ReverseIPv4(ip)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.listed, ip)
	l.zone.Remove(rev+"."+l.origin, dnsmsg.TypeA)
	return nil
}

// Contains reports a listing (local check, no DNS).
func (l *List) Contains(ip string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.listed[ip]
	return ok
}

// Size reports the number of listed addresses.
func (l *List) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.listed)
}

// Lookup performs the standard client-side DNSBL check through a
// resolver: listed == the reversed name resolves. The query name is
// built append-style in one stack buffer; the only allocation left is
// the name string the resolver API takes.
func Lookup(res *dnsresolver.Resolver, origin, ip string) (bool, error) {
	var buf [80]byte
	name, err := AppendReverseIPv4(buf[:0], ip)
	if err != nil {
		return false, err
	}
	name = append(name, '.')
	name = append(name, dnsmsg.CanonicalName(origin)...)
	addrs, err := res.LookupA(string(name))
	if err != nil {
		// NXDOMAIN (or NODATA) means "not listed".
		return false, nil
	}
	return len(addrs) > 0, nil
}

// Trap is a spamtrap feed: reported client addresses are listed after the
// feed's processing latency (detection, aggregation, publication — the
// realistic delay the synergy hinges on).
type Trap struct {
	list    *List
	sched   *simtime.Scheduler
	latency time.Duration

	mu       sync.Mutex
	reported map[string]bool
}

// NewTrap builds a trap feeding list with the given listing latency.
func NewTrap(list *List, sched *simtime.Scheduler, latency time.Duration) *Trap {
	return &Trap{list: list, sched: sched, latency: latency, reported: make(map[string]bool)}
}

// Report schedules the listing of ip after the feed latency. Duplicate
// reports are ignored.
func (t *Trap) Report(ip string) {
	t.mu.Lock()
	if t.reported[ip] {
		t.mu.Unlock()
		return
	}
	t.reported[ip] = true
	t.mu.Unlock()
	t.sched.After(t.latency, "dnsbl listing", func() {
		t.list.Add(ip)
	})
}

// Reported reports whether ip has already been fed to the trap.
func (t *Trap) Reported(ip string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reported[ip]
}
