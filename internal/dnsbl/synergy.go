package dnsbl

import (
	"fmt"
	"time"

	"repro/internal/botnet"
	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/greylist"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/smtpproto"
	"repro/internal/smtpserver"
)

// SynergyResult is the outcome of one greylisting+DNSBL run.
type SynergyResult struct {
	// ListingLatency is the spamtrap-to-publication delay tested.
	ListingLatency time.Duration
	// DeliveredGreylistOnly counts spam delivered with greylisting
	// alone (the Kelihos baseline: everything gets through).
	DeliveredGreylistOnly int
	// DeliveredWithDNSBL counts spam delivered when the greylisting
	// delay races the blacklist feed.
	DeliveredWithDNSBL int
	// ListedBeforeRetry reports whether the bot's address was published
	// before its first greylisting-beating retry.
	ListedBeforeRetry bool
}

// Synergy runs the experiment the paper's Section II only argues: a
// retrying bot (Kelihos model) attacks a greylisted domain whose server
// also consults a DNSBL at RCPT time; the bot's very first attempt hits
// the spamtrap feed; the feed publishes the listing after
// listingLatency. With greylisting's threshold delaying delivery by at
// least 300 s, any feed faster than the bot's retry turns the temporary
// deferral into a permanent block.
func Synergy(listingLatency time.Duration, recipients int, seed int64) (*SynergyResult, error) {
	// Baseline: greylisting only.
	baseline, err := runCampaign(nil, 0, recipients, seed)
	if err != nil {
		return nil, err
	}
	// With the DNSBL race.
	withBL, err := runCampaign(&listingLatency, listingLatency, recipients, seed)
	if err != nil {
		return nil, err
	}
	return &SynergyResult{
		ListingLatency:        listingLatency,
		DeliveredGreylistOnly: baseline.delivered,
		DeliveredWithDNSBL:    withBL.delivered,
		ListedBeforeRetry:     withBL.listedBeforeRetry,
	}, nil
}

type campaignOutcome struct {
	delivered         int
	listedBeforeRetry bool
}

// runCampaign wires the instrumented server by hand (rather than through
// core.Domain) because the DNSBL check sits in front of greylisting.
func runCampaign(useBL *time.Duration, latency time.Duration, recipients int, seed int64) (*campaignOutcome, error) {
	network := netsim.New()
	dns := dnsserver.New()
	clock := simtime.NewSim(simtime.Epoch)
	sched := simtime.NewScheduler(clock)
	resolver := dnsresolver.New(dnsresolver.Direct(dns), clock)
	resolver.DisableCache = true

	const domainName = "victim.example"
	const botIP = "203.0.113.50"

	// DNS for the victim (single live MX — greylisting only, so the walk
	// doesn't double attempts).
	zone := dnsserver.NewZone(domainName)
	if err := zone.Add(dnsmsg.RR{Name: domainName, Type: dnsmsg.TypeMX, TTL: 300,
		Data: dnsmsg.MX{Preference: 0, Host: "mx." + domainName}}); err != nil {
		return nil, err
	}
	if err := zone.Add(dnsmsg.RR{Name: "mx." + domainName, Type: dnsmsg.TypeA, TTL: 300,
		Data: dnsmsg.MustIPv4("10.0.0.1")}); err != nil {
		return nil, err
	}
	dns.AddZone(zone)

	var bl *List
	var trap *Trap
	if useBL != nil {
		bl = New("bl.example", dns, clock)
		trap = NewTrap(bl, sched, latency)
	}

	g := greylist.New(greylist.Policy{
		Threshold:   300 * time.Second,
		RetryWindow: 48 * time.Hour,
	}, clock)

	outcome := &campaignOutcome{}
	srv := smtpserver.New(smtpserver.Config{
		Hostname: "mx." + domainName,
		Clock:    clock,
		Hooks: smtpserver.Hooks{
			OnRcpt: func(clientIP, sender, rcpt string) *smtpproto.Reply {
				// The DNSBL check runs BEFORE greylisting, as real
				// Postfix restriction lists do.
				if bl != nil {
					if listed, _ := Lookup(resolver, bl.Origin(), clientIP); listed {
						r := smtpproto.NewReply(554, "5.7.1", "Client listed by bl.example")
						return &r
					}
				}
				v := g.Check(greylist.Triplet{ClientIP: clientIP, Sender: sender, Recipient: rcpt})
				if v.Decision == greylist.Pass {
					return nil
				}
				// Every deferred first attempt also feeds the trap:
				// the spam run has been observed somewhere.
				if trap != nil {
					trap.Report(clientIP)
				}
				r := smtpproto.NewReply(451, "4.7.1", "Greylisted")
				return &r
			},
			OnMessage: func(env *smtpserver.Envelope) *smtpproto.Reply {
				outcome.delivered++
				return nil
			},
		},
	})
	l, err := network.Listen("10.0.0.1:25")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer srv.Close()

	bot, err := botnet.New(botnet.Kelihos(), botnet.Env{
		Net: network, Resolver: resolver, Sched: sched,
		SourceIP: botIP, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	rcpts := make([]string, recipients)
	for i := range rcpts {
		rcpts[i] = fmt.Sprintf("user%d@%s", i, domainName)
	}
	bot.Launch(botnet.Campaign{
		Domain: domainName, Sender: "bot@spam.example",
		Recipients: rcpts, Data: botnet.SpamPayload("Kelihos", "synergy"),
	})
	sched.Run()

	if bl != nil {
		// Was the listing in place before the bot's earliest possible
		// greylisting-beating retry (300 s)?
		outcome.listedBeforeRetry = latency < 300*time.Second && bl.Contains(botIP)
	}
	return outcome, nil
}
