package dnsbl

import (
	"testing"
	"time"

	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/simtime"
)

func TestReverseIPv4(t *testing.T) {
	got, err := ReverseIPv4("203.0.113.9")
	if err != nil || got != "9.113.0.203" {
		t.Fatalf("ReverseIPv4 = %q, %v", got, err)
	}
	for _, bad := range []string{"", "1.2.3", "a.b.c.d", "300.1.1.1"} {
		if _, err := ReverseIPv4(bad); err == nil {
			t.Errorf("ReverseIPv4(%q) succeeded", bad)
		}
	}
}

func newBL(t *testing.T) (*List, *dnsresolver.Resolver, *simtime.Sim) {
	t.Helper()
	dns := dnsserver.New()
	clock := simtime.NewSim(simtime.Epoch)
	bl := New("bl.example", dns, clock)
	res := dnsresolver.New(dnsresolver.Direct(dns), clock)
	res.DisableCache = true
	return bl, res, clock
}

func TestAddLookupRemove(t *testing.T) {
	bl, res, _ := newBL(t)
	const ip = "203.0.113.9"

	if listed, err := Lookup(res, "bl.example", ip); err != nil || listed {
		t.Fatalf("fresh lookup = %v, %v", listed, err)
	}
	if err := bl.Add(ip); err != nil {
		t.Fatal(err)
	}
	if !bl.Contains(ip) || bl.Size() != 1 {
		t.Fatalf("Contains/Size after Add: %v, %d", bl.Contains(ip), bl.Size())
	}
	listed, err := Lookup(res, "bl.example", ip)
	if err != nil || !listed {
		t.Fatalf("lookup after Add = %v, %v", listed, err)
	}
	// Double-add is idempotent.
	if err := bl.Add(ip); err != nil {
		t.Fatal(err)
	}
	if bl.Size() != 1 {
		t.Fatalf("Size after double Add = %d", bl.Size())
	}
	if err := bl.Remove(ip); err != nil {
		t.Fatal(err)
	}
	if listed, _ := Lookup(res, "bl.example", ip); listed {
		t.Fatal("still listed after Remove")
	}
	// Unrelated addresses are never listed.
	if listed, _ := Lookup(res, "bl.example", "198.51.100.1"); listed {
		t.Fatal("unlisted address resolved")
	}
	if err := bl.Add("garbage"); err == nil {
		t.Fatal("Add(garbage) succeeded")
	}
	if err := bl.Remove("garbage"); err == nil {
		t.Fatal("Remove(garbage) succeeded")
	}
}

func TestTrapLatency(t *testing.T) {
	bl, _, clock := newBL(t)
	sched := simtime.NewScheduler(clock)
	trap := NewTrap(bl, sched, 10*time.Minute)

	trap.Report("203.0.113.9")
	trap.Report("203.0.113.9") // duplicate ignored
	if !trap.Reported("203.0.113.9") {
		t.Fatal("Reported = false")
	}
	sched.RunFor(5 * time.Minute)
	if bl.Contains("203.0.113.9") {
		t.Fatal("listed before the feed latency elapsed")
	}
	sched.RunFor(6 * time.Minute)
	if !bl.Contains("203.0.113.9") {
		t.Fatal("not listed after the feed latency")
	}
	if bl.Size() != 1 {
		t.Fatalf("size = %d (duplicate report must not double-list)", bl.Size())
	}
}

// TestSynergyFastFeedBlocksKelihos verifies the paper's Section II claim
// end to end: with a blacklist feed faster than the bot's retry, the
// greylisting delay converts Kelihos' spam into a permanent block.
func TestSynergyFastFeedBlocksKelihos(t *testing.T) {
	const recipients = 5
	res, err := Synergy(60*time.Second, recipients, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredGreylistOnly != recipients {
		t.Fatalf("baseline delivered %d/%d — Kelihos must beat greylisting alone",
			res.DeliveredGreylistOnly, recipients)
	}
	if res.DeliveredWithDNSBL != 0 {
		t.Fatalf("with a 60s feed, %d messages still delivered", res.DeliveredWithDNSBL)
	}
	if !res.ListedBeforeRetry {
		t.Fatal("bot not listed before its retry")
	}
}

// TestSynergySlowFeedLosesTheRace: a feed slower than the bot's retry
// window lets the spam through — the synergy only works with fast feeds.
func TestSynergySlowFeedLosesTheRace(t *testing.T) {
	const recipients = 5
	// Kelihos' first retry falls in 300-600s; a 2h feed is far too slow.
	res, err := Synergy(2*time.Hour, recipients, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredWithDNSBL != recipients {
		t.Fatalf("slow feed should lose: delivered %d/%d", res.DeliveredWithDNSBL, recipients)
	}
	if res.ListedBeforeRetry {
		t.Fatal("slow feed cannot list before the retry")
	}
}

func TestSynergyBoundaryFeed(t *testing.T) {
	// A 300s feed races the first retry (uniform in 300-600s): the
	// listing lands at exactly 300s, before any retry can arrive, so
	// everything is blocked.
	res, err := Synergy(300*time.Second, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredWithDNSBL != 0 {
		t.Fatalf("boundary feed: delivered %d", res.DeliveredWithDNSBL)
	}
}

func TestAppendReverseIPv4(t *testing.T) {
	var buf [16]byte
	got, err := AppendReverseIPv4(buf[:0], "10.0.0.1")
	if err != nil || string(got) != "1.0.0.10" {
		t.Fatalf("AppendReverseIPv4 = %q, %v", got, err)
	}
	// Appends after existing content instead of clobbering it.
	got, err = AppendReverseIPv4([]byte("x."), "1.2.3.4")
	if err != nil || string(got) != "x.4.3.2.1" {
		t.Fatalf("append onto prefix = %q, %v", got, err)
	}
	for _, bad := range []string{"", ".", "1.2.3", "1.2.3.4.5", "1.2.3.4.", ".1.2.3.4", "1..3.4", "1.2.3.256", "1.2.3.4a", "1.2.3.1234"} {
		if _, err := AppendReverseIPv4(buf[:0], bad); err == nil {
			t.Errorf("AppendReverseIPv4(%q) succeeded", bad)
		}
	}
	// Leading zeros are accepted, matching dnsmsg.ParseIPv4.
	if got, err := AppendReverseIPv4(buf[:0], "01.002.3.4"); err != nil || string(got) != "4.3.002.01" {
		t.Errorf("leading zeros = %q, %v", got, err)
	}
}

// TestAppendReverseIPv4Allocs pins the reversal at 0 allocs: it runs
// per DNSWL lookup on the greylisting bypass path, where the old
// strings.Split version cost three allocations.
func TestAppendReverseIPv4Allocs(t *testing.T) {
	var buf [16]byte
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := AppendReverseIPv4(buf[:0], "203.0.113.9"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendReverseIPv4 allocates %.1f/op", allocs)
	}
}

func BenchmarkAppendReverseIPv4(b *testing.B) {
	var buf [16]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AppendReverseIPv4(buf[:0], "203.0.113.9"); err != nil {
			b.Fatal(err)
		}
	}
}
