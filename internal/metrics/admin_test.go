package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminServer(t *testing.T) {
	reg := NewRegistry()
	RegisterProcess(reg)
	reg.Counter("admin_test_total", "T.").Add(3)

	srv, err := ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{"admin_test_total 3\n", "go_goroutines", "process_uptime_seconds"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// pprof index and a non-blocking profile must be reachable.
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status=%d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Errorf("/debug/pprof/goroutine status=%d", code)
	}

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", code)
	}
}

func TestMetricsContentType(t *testing.T) {
	reg := NewRegistry()
	srv, err := ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition version 0.0.4", ct)
	}
}
