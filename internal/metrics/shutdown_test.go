package metrics

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestShutdownDrainsInFlightScrape races a slow scrape against
// Shutdown: the graceful path must let the in-flight response finish
// (where Close would abandon it).
func TestShutdownDrainsInFlightScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("drain_test_total", "T.").Add(7)
	inHandler := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		time.Sleep(150 * time.Millisecond)
		fmt.Fprintln(w, "slow-done")
	})
	srv, err := ServeAdmin("127.0.0.1:0", reg, Endpoint{Path: "/slow", Handler: slow})
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	base := "http://" + srv.Addr().String()

	type result struct {
		code int
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		buf := new(strings.Builder)
		_, err = fmt.Fprint(buf, readAll(resp))
		got <- result{code: resp.StatusCode, body: buf.String(), err: err}
	}()

	<-inHandler // the scrape is now in flight
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape failed across Shutdown: %v", r.err)
	}
	if r.code != http.StatusOK || !strings.Contains(r.body, "slow-done") {
		t.Fatalf("in-flight scrape = %d %q, want 200 with body", r.code, r.body)
	}

	// The listener must be stopped: new connections are refused.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestShutdownTimeoutHardCloses covers the other side of the race: a
// handler that outlives the drain window is cut off and Shutdown
// still returns with the listener stopped.
func TestShutdownTimeoutHardCloses(t *testing.T) {
	reg := NewRegistry()
	inHandler := make(chan struct{})
	release := make(chan struct{})
	stuck := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
	})
	srv, err := ServeAdmin("127.0.0.1:0", reg, Endpoint{Path: "/stuck", Handler: stuck})
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer close(release)
	base := "http://" + srv.Addr().String()

	go func() {
		resp, err := http.Get(base + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown should report the expired drain")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Shutdown took %v despite 50ms drain window", elapsed)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after timed-out Shutdown")
	}
}

func readAll(resp *http.Response) string {
	buf := new(strings.Builder)
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		buf.Write(b[:n])
		if err != nil {
			return buf.String()
		}
	}
}
