package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mail_things_total", "Things that happened.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("mail_depth", "Current depth.")
	g.Set(7)
	g.Dec()
	r.CounterFunc("mail_mirror_total", "Mirrored counter.", func() uint64 { return 9 })
	r.GaugeFunc("mail_temp", "Mirrored gauge.", func() float64 { return 1.5 })

	out := expose(t, r)
	for _, want := range []string{
		"# HELP mail_things_total Things that happened.\n",
		"# TYPE mail_things_total counter\n",
		"mail_things_total 42\n",
		"# TYPE mail_depth gauge\n",
		"mail_depth 6\n",
		"mail_mirror_total 9\n",
		"mail_temp 1.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("verdicts_total", "Verdicts.", "reason", "first-seen").Add(3)
	r.Counter("verdicts_total", "Verdicts.", "reason", "too-soon").Add(5)
	// Same name+labels returns the same handle.
	r.Counter("verdicts_total", "Verdicts.", "reason", "first-seen").Inc()

	out := expose(t, r)
	if !strings.Contains(out, `verdicts_total{reason="first-seen"} 4`+"\n") {
		t.Errorf("missing first-seen series:\n%s", out)
	}
	if !strings.Contains(out, `verdicts_total{reason="too-soon"} 5`+"\n") {
		t.Errorf("missing too-soon series:\n%s", out)
	}
	if strings.Count(out, "# TYPE verdicts_total counter") != 1 {
		t.Errorf("TYPE line must appear exactly once:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("odd_total", "Help with \\ and\nnewline.", "k", "a\"b\\c\nd").Inc()
	out := expose(t, r)
	if !strings.Contains(out, `# HELP odd_total Help with \\ and\nnewline.`+"\n") {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `odd_total{k="a\"b\\c\nd"} 1`+"\n") {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := expose(t, r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.01"} 1` + "\n",
		`lat_seconds_bucket{le="0.1"} 3` + "\n",
		`lat_seconds_bucket{le="1"} 4` + "\n",
		`lat_seconds_bucket{le="+Inf"} 5` + "\n",
		"lat_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if want := 0.005 + 0.05 + 0.05 + 0.5 + 5; h.Sum() != want {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 6 {
		t.Errorf("ObserveDuration did not count")
	}
}

func TestHistogramLabelsMergeLE(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sz", "Sizes.", []float64{1, 10}, "queue", "out")
	h.Observe(3)
	out := expose(t, r)
	if !strings.Contains(out, `sz_bucket{queue="out",le="10"} 1`+"\n") {
		t.Errorf("le not merged into labelset:\n%s", out)
	}
	if !strings.Contains(out, `sz_sum{queue="out"} 3`+"\n") {
		t.Errorf("sum missing labels:\n%s", out)
	}
}

// TestExpositionWellFormed validates the whole rendering line-by-line
// against the text-format grammar subset we emit: comment lines, then
// `name[{labels}] value` samples, no blank lines, trailing newline.
func TestExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	RegisterProcess(r)
	r.Counter("a_total", "A.", "x", "1").Inc()
	r.Histogram("b_seconds", "B.", nil).Observe(0.2)
	r.Gauge("c", "C.").Set(-3)

	out := expose(t, r)
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		// sample: metric value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		val := line[sp+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("unparsable value %q in line %q", val, line)
			}
		}
		metric := line[:sp]
		if i := strings.IndexByte(metric, '{'); i >= 0 {
			if !strings.HasSuffix(metric, "}") {
				t.Fatalf("unterminated labelset in %q", line)
			}
			name := metric[:i]
			if name == "" {
				t.Fatalf("empty metric name in %q", line)
			}
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "H.", []float64{0.5})
	c := r.Counter("c_total", "C.")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%2) * 0.7)
				r.Counter("dyn_total", "D.", "w", strconv.Itoa(w)).Inc()
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WriteText(&buf); err != nil {
						t.Errorf("WriteText: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "X.")
}

func TestCounterFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("m_total", "M.", func() uint64 { return 1 })
	r.CounterFunc("m_total", "M.", func() uint64 { return 2 })
	if out := expose(t, r); !strings.Contains(out, "m_total 2\n") {
		t.Errorf("newest CounterFunc must win:\n%s", out)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "B.", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.0001)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "B.")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	_ = fmt.Sprint(c.Value())
}
