package metrics

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"
)

// Endpoint is an extra handler mounted on the admin mux — daemons use
// it to attach surfaces this package must not know about (e.g. the
// trace browser at /debug/traces) without a second listener.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// NewAdminMux builds the admin endpoint surface: the registry exposition
// on /metrics, runtime profiling under /debug/pprof/ (mounted explicitly
// so importing this package never touches http.DefaultServeMux), a
// /healthz (a trivial always-ok one unless an extra endpoint claims the
// path — daemons pass Health.Endpoint() for real readiness probing),
// and any extra endpoints. Daemons serve it on a loopback or
// ops-network address via ServeAdmin.
func NewAdminMux(reg *Registry, extras ...Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	customHealth := false
	for _, e := range extras {
		if e.Path == "/healthz" && e.Handler != nil {
			customHealth = true
		}
	}
	if !customHealth {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})
	}
	paths := []string{"/metrics", "/healthz", "/debug/pprof/"}
	for _, e := range extras {
		if e.Path == "" || e.Handler == nil {
			continue
		}
		mux.Handle(e.Path, e.Handler)
		if e.Path != "/healthz" {
			paths = append(paths, e.Path)
		}
	}
	index := "admin endpoints: " + strings.Join(paths, " ")
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, index)
	})
	return mux
}

// AdminServer is a running admin HTTP listener.
type AdminServer struct {
	srv *http.Server
	l   net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (a *AdminServer) Addr() net.Addr { return a.l.Addr() }

// Close hard-stops the listener. In-flight scrapes are abandoned —
// use Shutdown for a drain that lets a racing scrape finish.
func (a *AdminServer) Close() error { return a.srv.Close() }

// DefaultDrainTimeout bounds how long Shutdown waits for in-flight
// scrapes when the caller's context carries no deadline of its own.
// Short by design: the admin surface is diagnostics, and a stalled
// pprof stream must not hold up process exit.
const DefaultDrainTimeout = 5 * time.Second

// Shutdown gracefully stops the listener: no new connections are
// accepted and in-flight requests get until ctx's deadline (or
// DefaultDrainTimeout when ctx has none) to complete. If the drain
// window expires the server is hard-closed, so Shutdown always leaves
// the listener stopped.
func (a *AdminServer) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultDrainTimeout)
		defer cancel()
	}
	if err := a.srv.Shutdown(ctx); err != nil {
		a.srv.Close()
		return err
	}
	return nil
}

// ServeAdmin binds addr and serves the admin mux for reg in a background
// goroutine until Close/Shutdown. Read timeouts are set so a stalled
// scraper cannot pin a connection (the same failure mode the policyd
// idle timeout guards against on the policy port). Extra endpoints are
// mounted alongside the built-in surface.
func ServeAdmin(addr string, reg *Registry, extras ...Endpoint) (*AdminServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: admin listen: %w", err)
	}
	srv := &http.Server{
		Handler:           NewAdminMux(reg, extras...),
		ReadHeaderTimeout: 10 * time.Second,
		// No global WriteTimeout: pprof profile/trace endpoints stream
		// for their ?seconds= duration by design.
		IdleTimeout: 2 * time.Minute,
	}
	go srv.Serve(l)
	return &AdminServer{srv: srv, l: l}, nil
}

// RegisterProcess adds process-level runtime metrics (uptime,
// goroutines, heap) to reg. Memory stats are read per scrape, which is
// cheap at human scrape intervals.
func RegisterProcess(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("go_sys_bytes",
		"Total bytes of memory obtained from the OS.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.Sys)
		})
	reg.CounterFunc("go_gc_cycles_total",
		"Completed GC cycles.",
		func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return uint64(ms.NumGC)
		})
}
