package metrics

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, h *Health) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	return rec.Code, rec.Body.String()
}

func TestHealthNoProbes(t *testing.T) {
	code, body := getBody(t, NewHealth())
	if code != 200 || body != "ok\n" {
		t.Errorf("empty health = %d %q, want 200 \"ok\\n\"", code, body)
	}
}

func TestHealthReadyAndDegraded(t *testing.T) {
	h := NewHealth()
	walErr := error(nil)
	h.Add("wal", func() error { return walErr })
	h.Add("bypass-chain", func() error { return nil })

	code, body := getBody(t, h)
	if code != 200 {
		t.Fatalf("ready code = %d, want 200", code)
	}
	// One "ok <probe>" line per probe, in registration order.
	if body != "ok wal\nok bypass-chain\n" {
		t.Errorf("ready body = %q", body)
	}

	walErr = errors.New("wal consumer died: disk full")
	code, body = getBody(t, h)
	if code != 503 {
		t.Fatalf("degraded code = %d, want 503", code)
	}
	if !strings.Contains(body, "degraded wal: wal consumer died: disk full") {
		t.Errorf("degraded body missing failure: %q", body)
	}
	if strings.Contains(body, "bypass-chain") {
		t.Errorf("degraded body lists passing probes: %q", body)
	}

	// Recovery flips it back without re-registration.
	walErr = nil
	if code, _ = getBody(t, h); code != 200 {
		t.Errorf("recovered code = %d, want 200", code)
	}
}

func TestHealthReplaceProbe(t *testing.T) {
	h := NewHealth()
	h.Add("wal", func() error { return errors.New("old probe") })
	h.Add("wal", func() error { return nil })
	if code, body := getBody(t, h); code != 200 || body != "ok wal\n" {
		t.Errorf("replaced probe = %d %q, want 200 \"ok wal\\n\"", code, body)
	}
	if failures := h.Check(); len(failures) != 0 {
		t.Errorf("Check = %v, want empty", failures)
	}
}

// TestAdminMuxHealthzOverride: the admin mux's built-in trivial probe
// must yield to a daemon's real Health endpoint at the same path.
func TestAdminMuxHealthzOverride(t *testing.T) {
	h := NewHealth()
	h.Add("wal", func() error { return errors.New("down") })
	mux := NewAdminMux(NewRegistry(), h.Endpoint())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Errorf("overridden /healthz = %d, want 503 from the real probe", rec.Code)
	}

	// Without an override the trivial probe answers.
	mux = NewAdminMux(NewRegistry())
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Errorf("builtin /healthz = %d %q, want 200 \"ok\\n\"", rec.Code, rec.Body.String())
	}
}
