package metrics

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Health is a named-probe readiness check for the admin listener's
// /healthz: each probe reports one subsystem (WAL consumer alive,
// bypass chain loaded, observatory ring current), and the endpoint
// answers 200 only while every probe passes — the contract a fleet
// load balancer needs to drain a degraded instance without killing it.
type Health struct {
	mu     sync.Mutex
	order  []string
	probes map[string]func() error
}

// NewHealth returns an empty Health (no probes — always ready).
func NewHealth() *Health {
	return &Health{probes: make(map[string]func() error)}
}

// Add registers (or replaces) a named probe. check must be safe for
// concurrent use; it runs on every /healthz request.
func (h *Health) Add(name string, check func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.probes[name]; !ok {
		h.order = append(h.order, name)
	}
	h.probes[name] = check
}

// Check runs every probe and returns the failures by probe name
// (empty when ready).
func (h *Health) Check() map[string]error {
	h.mu.Lock()
	names := append([]string(nil), h.order...)
	probes := make(map[string]func() error, len(h.probes))
	for n, p := range h.probes {
		probes[n] = p
	}
	h.mu.Unlock()
	failures := make(map[string]error)
	for _, n := range names {
		if err := probes[n](); err != nil {
			failures[n] = err
		}
	}
	return failures
}

// Handler serves the readiness report: 200 with one "ok <probe>" line
// per passing probe while ready, 503 with "degraded <probe>: <error>"
// lines for every failing probe otherwise. Lines are sorted by probe
// registration order so the body is stable for tests and log diffing.
func (h *Health) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h.mu.Lock()
		names := append([]string(nil), h.order...)
		h.mu.Unlock()
		failures := h.Check()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(failures) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			failed := make([]string, 0, len(failures))
			for n := range failures {
				failed = append(failed, n)
			}
			sort.Strings(failed)
			for _, n := range failed {
				fmt.Fprintf(w, "degraded %s: %v\n", n, failures[n])
			}
			return
		}
		if len(names) == 0 {
			fmt.Fprintln(w, "ok")
			return
		}
		for _, n := range names {
			fmt.Fprintf(w, "ok %s\n", n)
		}
	})
}

// Endpoint mounts the handler at /healthz, overriding the admin mux's
// built-in trivial probe.
func (h *Health) Endpoint() Endpoint {
	return Endpoint{Path: "/healthz", Handler: h.Handler()}
}
