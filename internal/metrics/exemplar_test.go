package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestObserveExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("op_seconds", "Op latency.", []float64{0.1, 1})

	h.Observe(0.05) // plain observation: no exemplar recorded
	h.ObserveExemplar(0.5, 0xabc)
	h.ObserveExemplar(0.6, 0xdef) // same bucket: newest wins
	h.ObserveDurationExemplar(5*time.Second, 0x123)
	h.ObserveExemplar(0.01, 0) // zero ID: counted, no exemplar

	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	ex := h.Exemplars()
	want := []uint64{0, 0xdef, 0x123}
	if len(ex) != len(want) {
		t.Fatalf("exemplars = %v, want %v", ex, want)
	}
	for i := range want {
		if ex[i] != want[i] {
			t.Fatalf("exemplars = %v, want %v", ex, want)
		}
	}
}

func TestExemplarsAbsentFromExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("op_seconds", "Op latency.", []float64{0.1})
	h.ObserveExemplar(0.05, 0xbeef)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace_id") || strings.Contains(buf.String(), "beef") {
		t.Fatalf("exposition leaked exemplars:\n%s", buf.String())
	}
	// The exemplar observation still counts like a normal one.
	if !strings.Contains(buf.String(), `op_seconds_bucket{le="0.1"} 1`) {
		t.Fatalf("exemplar observation missing from buckets:\n%s", buf.String())
	}
}

func TestWriteExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("check_seconds", "Check latency.", []float64{0.1, 1}, "shard", "0")
	h.ObserveExemplar(0.5, 0xcafe)
	h.ObserveExemplar(10, 0xf00d) // +Inf bucket
	reg.Histogram("quiet_seconds", "Never observed.", []float64{1})

	var buf bytes.Buffer
	if err := reg.WriteExemplars(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`check_seconds_bucket{shard="0",le="1"} trace_id=000000000000cafe`,
		`check_seconds_bucket{shard="0",le="+Inf"} trace_id=000000000000f00d`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteExemplars missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "quiet_seconds") {
		t.Fatalf("WriteExemplars listed exemplar-free histogram:\n%s", out)
	}
}

func TestWriteExemplarsEmpty(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	if err := reg.WriteExemplars(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(none recorded)") {
		t.Fatalf("empty dump = %q", buf.String())
	}
}
