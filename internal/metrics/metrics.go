// Package metrics is a small, dependency-free instrumentation registry
// for the mail pipeline: atomic counters, gauges, and fixed-bucket
// histograms, exposed in the Prometheus text exposition format
// (version 0.0.4). The paper's measurement campaigns (Sections IV–V) are
// instrumentation studies — per-family retry timelines, verdict
// breakdowns by threshold, months of greylist-log counters — and a
// production deployment of the same pipeline needs the equivalent
// signals exported at runtime. Every serving package (greylist,
// smtpserver, policyd, dnsserver, mtaqueue) registers its counters here,
// and the daemons serve the registry on an opt-in admin listener next to
// net/http/pprof (see admin.go).
//
// Design constraints, in order:
//
//  1. Zero hot-path cost. Counters and gauges are single atomics;
//     histograms are fixed arrays of atomic buckets. Nothing on the
//     observation path allocates, takes a lock, or formats a string —
//     the greylist known-passed Check benchmark stays at 0 allocs/op
//     with the registry attached.
//  2. Mirrors over shadows. Components that already keep atomic
//     counters (greylist.Stats) export them through CounterFunc/
//     GaugeFunc closures instead of double-counting, so the exposition
//     and the component's own Stats() can never disagree.
//  3. No dependencies. The exposition writer speaks the stable subset
//     of the Prometheus text format by hand; nothing outside the
//     standard library is imported.
//
// Metric and label names are never computed on the hot path: callers
// register one handle per label value up front (e.g. one counter per
// verdict reason) and observe through the handle.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (table sizes, active
// sessions, queue depth). Obtain gauges from a Registry.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap; it backs the
// histogram sum without locks or allocation.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are cumulative in the
// exposition (Prometheus `le` semantics); observations are lock-free.
// Obtain histograms from a Registry.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomicFloat
	// exemplars[i] remembers the trace ID of the most recent
	// ObserveExemplar landing in bucket i (0 = none), so a slow bucket
	// links to a concrete traced conversation. Kept out of the
	// /metrics exposition (WriteText stays byte-stable); dumped via
	// WriteExemplars on /debug/traces.
	exemplars []atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~16) and the branch
	// predictor does well on latency distributions; a binary search
	// costs more in practice and neither allocates.
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			h.count.Add(1)
			h.sum.add(v)
			return
		}
	}
	h.buckets[len(h.bounds)].Add(1) // +Inf bucket
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds (the Prometheus base unit).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one observation and, when traceID is
// nonzero, remembers it as the bucket's exemplar. Same lock-free
// cost profile as Observe plus one atomic store; plain Observe is
// untouched so untraced hot paths pay nothing for the feature.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	if traceID != 0 && h.exemplars != nil {
		h.exemplars[i].Store(traceID)
	}
}

// ObserveDurationExemplar records d in seconds with a trace exemplar.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID uint64) {
	h.ObserveExemplar(d.Seconds(), traceID)
}

// Exemplars returns the per-bucket exemplar trace IDs (0 = none),
// indexed like the bounds with the +Inf bucket last.
func (h *Histogram) Exemplars() []uint64 {
	if h.exemplars == nil {
		return nil
	}
	out := make([]uint64, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// DefLatencyBuckets covers sub-100µs engine checks through multi-second
// network stalls — the spread between an in-memory verdict and a
// greylisting-deferred SMTP transaction.
var DefLatencyBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// DefSizeBuckets suits small count distributions: pipelined RCPT bursts,
// policy request batches, queue retry attempts.
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labelset within a family.
type series struct {
	labels string // rendered {k="v",...} or ""

	// exactly one of the following is set
	counter     *Counter
	counterFunc func() uint64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name string
	help string
	kind metricKind

	order  []string // label strings in registration order
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus text
// format. It is safe for concurrent use; registration is idempotent
// (re-registering the same name and labels returns the existing handle,
// so shared engines and tests can register freely).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns ("reason", "first-seen", "shard", "3") into
// `{reason="first-seen",shard="3"}`. Panics on an odd count — label
// pairs are compile-time shape, not runtime data.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("metrics: odd label key/value count")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns (creating if needed) the family and the series slot for
// name+labels, enforcing kind consistency.
func (r *Registry) lookup(name, help string, kind metricKind, labelPairs []string) (*family, *series, bool) {
	labels := renderLabels(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, re-registered as %s", name, f.kind, kind))
	}
	if s, ok := f.series[labels]; ok {
		return f, s, true
	}
	s := &series{labels: labels}
	f.series[labels] = s
	f.order = append(f.order, labels)
	return f, s, false
}

// Counter registers (or returns the existing) counter under name with
// the given label key/value pairs.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	_, s, existed := r.lookup(name, help, kindCounter, labelPairs)
	if existed && s.counter != nil {
		return s.counter
	}
	if s.counter == nil {
		s.counter = &Counter{}
		s.counterFunc = nil
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the mirror mechanism for components that already
// keep their own atomic counters. Re-registering replaces fn (the
// newest component instance wins).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labelPairs ...string) {
	_, s, _ := r.lookup(name, help, kindCounter, labelPairs)
	s.counter = nil
	s.counterFunc = fn
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	_, s, existed := r.lookup(name, help, kindGauge, labelPairs)
	if existed && s.gauge != nil {
		return s.gauge
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
		s.gaugeFunc = nil
	}
	return s.gauge
}

// GaugeFunc registers a gauge read from fn at exposition time.
// Re-registering replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	_, s, _ := r.lookup(name, help, kindGauge, labelPairs)
	s.gauge = nil
	s.gaugeFunc = fn
}

// Histogram registers (or returns the existing) histogram with the given
// ascending bucket upper bounds (+Inf is implicit; nil means
// DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	_, s, existed := r.lookup(name, help, kindHistogram, labelPairs)
	if existed && s.hist != nil {
		return s.hist
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not ascending", name))
		}
	}
	h := &Histogram{
		bounds:    bounds,
		buckets:   make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Uint64, len(bounds)+1),
	}
	s.hist = h
	return h
}

// WriteExemplars renders every histogram bucket that has recorded an
// exemplar trace ID, as lines of the form
//
//	name_bucket{...,le="0.25"} trace_id=0123456789abcdef
//
// This is intentionally separate from WriteText: the /metrics
// exposition stays byte-stable for scrapers, while /debug/traces
// appends this dump so a slow bucket can be followed to the concrete
// conversation behind it.
func (r *Registry) WriteExemplars(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name, f := range r.fams {
		if f.kind == kindHistogram {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "histogram exemplars (bucket -> most recent trace id):")
	any := false
	for _, f := range fams {
		for _, labels := range f.order {
			s := f.series[labels]
			if s.hist == nil {
				continue
			}
			ex := s.hist.Exemplars()
			for i, id := range ex {
				if id == 0 {
					continue
				}
				bound := "+Inf"
				if i < len(s.hist.bounds) {
					bound = formatFloat(s.hist.bounds[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s trace_id=%016x\n", f.name, mergeLE(labels, bound), id)
				any = true
			}
		}
	}
	if !any {
		fmt.Fprintln(bw, "(none recorded)")
	}
	return bw.Flush()
}

// WriteText renders every family in the Prometheus text exposition
// format, families sorted by name, series in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, labels := range f.order {
			s := f.series[labels]
			switch {
			case s.counter != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, strconv.FormatUint(s.counter.Value(), 10))
			case s.counterFunc != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, strconv.FormatUint(s.counterFunc(), 10))
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, strconv.FormatInt(s.gauge.Value(), 10))
			case s.gaugeFunc != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labels, formatFloat(s.gaugeFunc()))
			case s.hist != nil:
				writeHistogram(bw, f.name, labels, s.hist)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with
// the le label merged into any existing labelset, then _sum and _count.
func writeHistogram(bw *bufio.Writer, name, labels string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(bw, "%s_bucket%s %d\n", name, mergeLE(labels, formatFloat(bound)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(bw, "%s_bucket%s %d\n", name, mergeLE(labels, "+Inf"), cum)
	fmt.Fprintf(bw, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(bw, "%s_count%s %d\n", name, labels, h.Count())
}

// mergeLE appends le="bound" to a rendered labelset.
func mergeLE(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
