package dnsserver

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dnsmsg"
)

func testZone(t *testing.T) *Zone {
	t.Helper()
	z := NewZone("foo.net")
	z.MustAdd(dnsmsg.RR{Name: "foo.net", Type: dnsmsg.TypeMX, TTL: 300, Data: dnsmsg.MX{Preference: 0, Host: "smtp.foo.net"}})
	z.MustAdd(dnsmsg.RR{Name: "foo.net", Type: dnsmsg.TypeMX, TTL: 300, Data: dnsmsg.MX{Preference: 15, Host: "smtp1.foo.net"}})
	z.MustAdd(dnsmsg.RR{Name: "smtp.foo.net", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("1.2.3.4")})
	z.MustAdd(dnsmsg.RR{Name: "smtp1.foo.net", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("1.2.3.5")})
	z.MustAdd(dnsmsg.RR{Name: "www.foo.net", Type: dnsmsg.TypeCNAME, TTL: 300, Data: dnsmsg.CNAME{Target: "web.foo.net"}})
	z.MustAdd(dnsmsg.RR{Name: "web.foo.net", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("1.2.3.6")})
	return z
}

func testServer(t *testing.T) *Server {
	t.Helper()
	s := New()
	s.AddZone(testZone(t))
	return s
}

func TestHandleMXWithGlue(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(dnsmsg.NewQuery(1, "foo.net", dnsmsg.TypeMX))
	if resp.Header.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if !resp.Header.Authoritative {
		t.Fatal("response not authoritative")
	}
	if len(resp.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(resp.Answers))
	}
	if len(resp.Additional) != 2 {
		t.Fatalf("additional (glue) = %d, want 2", len(resp.Additional))
	}
}

func TestHandleMXWithoutGlue(t *testing.T) {
	// The paper's dataset contained MX answers without resolved
	// addresses, forcing a second lookup; SetNoGlue models that.
	s := testServer(t)
	s.Zone("foo.net").SetNoGlue(true)
	resp := s.Handle(dnsmsg.NewQuery(1, "foo.net", dnsmsg.TypeMX))
	if len(resp.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(resp.Answers))
	}
	if len(resp.Additional) != 0 {
		t.Fatalf("additional = %d, want 0 with glue disabled", len(resp.Additional))
	}
}

func TestHandleA(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(dnsmsg.NewQuery(2, "smtp.foo.net", dnsmsg.TypeA))
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(resp.Answers))
	}
	if got := resp.Answers[0].Data.(dnsmsg.A).String(); got != "1.2.3.4" {
		t.Fatalf("A = %s", got)
	}
}

func TestHandleNXDomain(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(dnsmsg.NewQuery(3, "nope.foo.net", dnsmsg.TypeA))
	if resp.Header.RCode != dnsmsg.RCodeNameError {
		t.Fatalf("rcode = %v, want NXDOMAIN", resp.Header.RCode)
	}
}

func TestHandleNoDataIsNotNXDomain(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(dnsmsg.NewQuery(4, "smtp.foo.net", dnsmsg.TypeMX))
	if resp.Header.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("rcode = %v, want NOERROR (NODATA)", resp.Header.RCode)
	}
	if len(resp.Answers) != 0 {
		t.Fatalf("answers = %d, want 0", len(resp.Answers))
	}
}

func TestHandleOutsideZonesRefused(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(dnsmsg.NewQuery(5, "bar.org", dnsmsg.TypeA))
	if resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Fatalf("rcode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestHandleCNAMEChase(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(dnsmsg.NewQuery(6, "www.foo.net", dnsmsg.TypeA))
	if len(resp.Answers) != 2 {
		t.Fatalf("answers = %d, want CNAME + A", len(resp.Answers))
	}
	if _, ok := resp.Answers[0].Data.(dnsmsg.CNAME); !ok {
		t.Fatalf("first answer = %T, want CNAME", resp.Answers[0].Data)
	}
	if got := resp.Answers[1].Data.(dnsmsg.A).String(); got != "1.2.3.6" {
		t.Fatalf("chased A = %s", got)
	}
}

func TestHandleCNAMELoopTerminates(t *testing.T) {
	z := NewZone("loop.test")
	z.MustAdd(dnsmsg.RR{Name: "a.loop.test", Type: dnsmsg.TypeCNAME, Data: dnsmsg.CNAME{Target: "b.loop.test"}})
	z.MustAdd(dnsmsg.RR{Name: "b.loop.test", Type: dnsmsg.TypeCNAME, Data: dnsmsg.CNAME{Target: "a.loop.test"}})
	s := New()
	s.AddZone(z)
	done := make(chan *dnsmsg.Message, 1)
	go func() { done <- s.Handle(dnsmsg.NewQuery(7, "a.loop.test", dnsmsg.TypeA)) }()
	select {
	case resp := <-done:
		if len(resp.Answers) > 2*maxCNAMEChain {
			t.Fatalf("loop produced %d answers", len(resp.Answers))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CNAME loop did not terminate")
	}
}

func TestHandleANY(t *testing.T) {
	s := testServer(t)
	resp := s.Handle(dnsmsg.NewQuery(8, "foo.net", dnsmsg.TypeANY))
	if len(resp.Answers) != 2 {
		t.Fatalf("ANY answers = %d, want 2 MX", len(resp.Answers))
	}
}

func TestHandleRejectsMultiQuestion(t *testing.T) {
	s := testServer(t)
	q := dnsmsg.NewQuery(9, "foo.net", dnsmsg.TypeA)
	q.Questions = append(q.Questions, q.Questions[0])
	resp := s.Handle(q)
	if resp.Header.RCode != dnsmsg.RCodeNotImplemented {
		t.Fatalf("rcode = %v, want NOTIMP", resp.Header.RCode)
	}
}

func TestOnQueryObserver(t *testing.T) {
	s := testServer(t)
	var mu sync.Mutex
	var seen []dnsmsg.Question
	s.OnQuery = func(q dnsmsg.Question) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, q)
	}
	s.Handle(dnsmsg.NewQuery(1, "foo.net", dnsmsg.TypeMX))
	s.Handle(dnsmsg.NewQuery(2, "smtp.foo.net", dnsmsg.TypeA))
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0].Type != dnsmsg.TypeMX || seen[1].Type != dnsmsg.TypeA {
		t.Fatalf("observed queries = %v", seen)
	}
}

func TestZoneAddRejectsForeignName(t *testing.T) {
	z := NewZone("foo.net")
	err := z.Add(dnsmsg.RR{Name: "bar.org", Type: dnsmsg.TypeA, Data: dnsmsg.MustIPv4("9.9.9.9")})
	if err == nil {
		t.Fatal("Add accepted a name outside the zone")
	}
}

func TestZoneRemove(t *testing.T) {
	z := testZone(t)
	z.Remove("foo.net", dnsmsg.TypeMX)
	if rrs, exists := z.Lookup("foo.net", dnsmsg.TypeMX); len(rrs) != 0 || exists {
		t.Fatalf("after Remove: rrs=%v exists=%v", rrs, exists)
	}
	// Removing one type keeps others.
	z.MustAdd(dnsmsg.RR{Name: "multi.foo.net", Type: dnsmsg.TypeA, Data: dnsmsg.MustIPv4("1.1.1.1")})
	z.MustAdd(dnsmsg.RR{Name: "multi.foo.net", Type: dnsmsg.TypeTXT, Data: dnsmsg.TXT{Strings: []string{"x"}}})
	z.Remove("multi.foo.net", dnsmsg.TypeTXT)
	if rrs, exists := z.Lookup("multi.foo.net", dnsmsg.TypeA); len(rrs) != 1 || !exists {
		t.Fatalf("A record lost on selective remove: rrs=%v exists=%v", rrs, exists)
	}
	// ANY removes everything.
	z.Remove("multi.foo.net", dnsmsg.TypeANY)
	if _, exists := z.Lookup("multi.foo.net", dnsmsg.TypeA); exists {
		t.Fatal("name still exists after Remove ANY")
	}
}

func TestZoneNamesSorted(t *testing.T) {
	z := testZone(t)
	names := z.Names()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestRootZoneCatchesAll(t *testing.T) {
	s := New()
	root := NewZone("")
	root.MustAdd(dnsmsg.RR{Name: "anything.example", Type: dnsmsg.TypeA, Data: dnsmsg.MustIPv4("8.8.8.8")})
	s.AddZone(root)
	resp := s.Handle(dnsmsg.NewQuery(1, "anything.example", dnsmsg.TypeA))
	if len(resp.Answers) != 1 {
		t.Fatalf("root zone answers = %d", len(resp.Answers))
	}
}

func TestRemoveZone(t *testing.T) {
	s := testServer(t)
	s.RemoveZone("foo.net")
	resp := s.Handle(dnsmsg.NewQuery(1, "foo.net", dnsmsg.TypeMX))
	if resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Fatalf("rcode after RemoveZone = %v", resp.Header.RCode)
	}
}

func TestExchangeWire(t *testing.T) {
	s := testServer(t)
	q, err := dnsmsg.NewQuery(77, "foo.net", dnsmsg.TypeMX).Pack()
	if err != nil {
		t.Fatal(err)
	}
	respWire, err := s.Exchange(q)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	resp, err := dnsmsg.Unpack(respWire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if resp.Header.ID != 77 || len(resp.Answers) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if _, err := s.Exchange([]byte{1, 2, 3}); err == nil {
		t.Fatal("Exchange accepted garbage")
	}
}

func TestServeUDPRealSocket(t *testing.T) {
	s := testServer(t)
	addr, err := s.ListenAndServeUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServeUDP: %v", err)
	}
	defer s.Close()

	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	q, _ := dnsmsg.NewQuery(5, "smtp.foo.net", dnsmsg.TypeA).Pack()
	if _, err := conn.Write(q); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	resp, err := dnsmsg.Unpack(buf[:n])
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data.(dnsmsg.A).String() != "1.2.3.4" {
		t.Fatalf("UDP answer = %+v", resp.Answers)
	}
}

func TestServeTCPLengthPrefixed(t *testing.T) {
	s := testServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go s.ServeTCP(l)
	defer l.Close()
	defer s.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	q, _ := dnsmsg.NewQuery(6, "foo.net", dnsmsg.TypeMX).Pack()
	framed := append([]byte{byte(len(q) >> 8), byte(len(q))}, q...)
	if _, err := conn.Write(framed); err != nil {
		t.Fatalf("write: %v", err)
	}
	lenbuf := make([]byte, 2)
	if _, err := conn.Read(lenbuf); err != nil {
		t.Fatalf("read len: %v", err)
	}
	n := int(lenbuf[0])<<8 | int(lenbuf[1])
	respWire := make([]byte, n)
	read := 0
	for read < n {
		m, err := conn.Read(respWire[read:])
		if err != nil {
			t.Fatalf("read body: %v", err)
		}
		read += m
	}
	resp, err := dnsmsg.Unpack(respWire)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if len(resp.Answers) != 2 {
		t.Fatalf("TCP answers = %d, want 2", len(resp.Answers))
	}
}

func TestCloseIdempotentAndBlocksNewTransports(t *testing.T) {
	s := testServer(t)
	if _, err := s.ListenAndServeUDP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ListenAndServeUDP("127.0.0.1:0"); err == nil {
		t.Fatal("ListenAndServeUDP succeeded after Close")
	}
}

func TestZoneReset(t *testing.T) {
	z := NewZone("one.example")
	z.SetNoGlue(true)
	z.MustAdd(dnsmsg.RR{Name: "one.example", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("10.0.0.1")})

	z.Reset("two.example")
	if z.Origin() != "two.example" {
		t.Fatalf("origin after Reset: %q", z.Origin())
	}
	if rrs, exists := z.Lookup("one.example", dnsmsg.TypeA); exists || len(rrs) != 0 {
		t.Fatal("old records survived Reset")
	}
	if z.noGlue.Load() {
		t.Fatal("noGlue flag survived Reset")
	}
	// The reset zone accepts records under its new origin.
	z.MustAdd(dnsmsg.RR{Name: "mx.two.example", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("10.0.0.2")})
	if _, exists := z.Lookup("mx.two.example", dnsmsg.TypeA); !exists {
		t.Fatal("record missing after Reset+Add")
	}
}

func TestFallbackZoneSource(t *testing.T) {
	s := New()
	registered := NewZone("real.example")
	registered.MustAdd(dnsmsg.RR{Name: "real.example", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("10.0.0.1")})
	s.AddZone(registered)

	calls := 0
	scratch := NewZone("placeholder")
	s.SetFallback(func(name string) *Zone {
		calls++
		if name != "synth.example" && name != "mx.synth.example" {
			return nil
		}
		scratch.Reset("synth.example")
		scratch.MustAdd(dnsmsg.RR{Name: "synth.example", Type: dnsmsg.TypeMX, TTL: 300,
			Data: dnsmsg.MX{Preference: 10, Host: "mx.synth.example"}})
		scratch.MustAdd(dnsmsg.RR{Name: "mx.synth.example", Type: dnsmsg.TypeA, TTL: 300,
			Data: dnsmsg.MustIPv4("10.0.0.9")})
		return scratch
	})

	query := func(name string, typ dnsmsg.Type) *dnsmsg.Message {
		return s.Handle(&dnsmsg.Message{
			Header:    dnsmsg.Header{ID: 1, OpCode: dnsmsg.OpQuery},
			Questions: []dnsmsg.Question{{Name: name, Type: typ, Class: dnsmsg.ClassINET}},
		})
	}

	// Registered zones win; the fallback is not consulted for them.
	if resp := query("real.example", dnsmsg.TypeA); resp.Header.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("registered zone answer: %+v", resp)
	}
	if calls != 0 {
		t.Fatalf("fallback consulted %d times for a registered zone", calls)
	}

	// Unregistered names go to the fallback — with glue resolved through
	// it as well.
	resp := query("synth.example", dnsmsg.TypeMX)
	if resp.Header.RCode != dnsmsg.RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("fallback MX answer: %+v", resp)
	}
	if len(resp.Additional) != 1 {
		t.Fatalf("fallback answer carried %d glue records, want 1", len(resp.Additional))
	}

	// Names the fallback rejects are refused, as with no zone at all.
	if resp := query("other.net", dnsmsg.TypeA); resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Fatalf("unmatched name RCode = %v, want refused", resp.Header.RCode)
	}

	s.SetFallback(nil)
	if resp := query("synth.example", dnsmsg.TypeMX); resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Fatalf("fallback survived removal: %+v", resp)
	}
}
