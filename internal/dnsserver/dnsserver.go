// Package dnsserver implements a small authoritative DNS server over the
// dnsmsg wire format. It plays two roles in the reproduction:
//
//   - In the contained lab (Section III of the paper), it is the forged DNS
//     the malware models talk to: every MX query is answered with records
//     pointing at the instrumented mail server, exactly as the authors
//     intercepted MX requests from the infected VM.
//   - In the adoption study (Section IV-A), it serves the synthetic
//     Internet's zones to the zmap-style scanner, including the
//     misconfiguration modes the paper encountered (missing MX glue that
//     forces a second lookup, unresolvable MX records).
//
// The server answers from in-memory zones, supports exact-name matching with
// CNAME chasing inside a zone, the ANY pseudo-query, and MX glue in the
// additional section. It serves real UDP (datagram) and TCP (two-octet
// length-prefixed) transports and an in-process Handle path for simulations.
package dnsserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dnsmsg"
)

// Zone holds the records of a single origin (e.g. "foo.net"). A Zone is
// safe for concurrent use.
type Zone struct {
	origin string

	mu      sync.RWMutex
	records map[string][]dnsmsg.RR // canonical owner name -> RRs
	// noGlue suppresses additional-section A records for MX targets,
	// modelling the paper's "MX records that were not properly
	// resolved" that forced their parallel scanner to re-resolve. It is
	// atomic so the answer path reads it without touching the zone lock.
	noGlue atomic.Bool
}

// NewZone returns an empty zone for origin.
func NewZone(origin string) *Zone {
	return &Zone{
		origin:  dnsmsg.CanonicalName(origin),
		records: make(map[string][]dnsmsg.RR),
	}
}

// Origin returns the zone origin (canonical form).
func (z *Zone) Origin() string { return z.origin }

// Reset re-points the zone at a new origin, dropping every record and
// the no-glue flag but keeping the record map's capacity. It exists for
// single-goroutine scratch zones (a streaming scan worker synthesizes
// one domain's zone per query into the same Zone); concurrent readers
// of a Reset zone see an inconsistent origin/record mix.
func (z *Zone) Reset(origin string) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.origin = dnsmsg.CanonicalName(origin)
	clear(z.records)
	z.noGlue.Store(false)
}

// SetNoGlue controls whether MX answers include the exchangers' A records
// in the additional section. Glue is included by default.
func (z *Zone) SetNoGlue(noGlue bool) {
	z.noGlue.Store(noGlue)
}

// Add inserts a record. The owner name must be within the zone.
func (z *Zone) Add(rr dnsmsg.RR) error {
	name := dnsmsg.CanonicalName(rr.Name)
	if !nameInZone(name, z.origin) {
		return fmt.Errorf("dnsserver: %q is not in zone %q", rr.Name, z.origin)
	}
	rr.Name = name
	if rr.Class == 0 {
		rr.Class = dnsmsg.ClassINET
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.records[name] = append(z.records[name], rr)
	return nil
}

// MustAdd is Add that panics on error; for fixtures.
func (z *Zone) MustAdd(rr dnsmsg.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// Remove deletes all records of the given type at name. Type ANY removes
// every record at the name.
func (z *Zone) Remove(name string, t dnsmsg.Type) {
	name = dnsmsg.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	if t == dnsmsg.TypeANY {
		delete(z.records, name)
		return
	}
	var kept []dnsmsg.RR
	for _, rr := range z.records[name] {
		if rr.Type != t {
			kept = append(kept, rr)
		}
	}
	if len(kept) == 0 {
		delete(z.records, name)
	} else {
		z.records[name] = kept
	}
}

// Lookup returns the records of type t at name (ANY returns all), and
// whether the name exists at all (to distinguish NODATA from NXDOMAIN).
func (z *Zone) Lookup(name string, t dnsmsg.Type) (rrs []dnsmsg.RR, nameExists bool) {
	return z.LookupAppend(nil, name, t)
}

// LookupAppend appends the records of type t at name (ANY appends all) to
// dst and reports whether the name exists at all (to distinguish NODATA
// from NXDOMAIN). It is the allocation-free form of Lookup for callers
// that reuse a response buffer, such as the adoption scanner's in-process
// query path.
func (z *Zone) LookupAppend(dst []dnsmsg.RR, name string, t dnsmsg.Type) (rrs []dnsmsg.RR, nameExists bool) {
	name = dnsmsg.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	all, ok := z.records[name]
	if !ok {
		return dst, false
	}
	for _, rr := range all {
		if t == dnsmsg.TypeANY || rr.Type == t {
			dst = append(dst, rr)
		}
	}
	return dst, true
}

// Names returns every owner name in the zone, sorted; used by the scan
// dataset builder.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]string, 0, len(z.records))
	for n := range z.records {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func nameInZone(name, origin string) bool {
	if origin == "" {
		return true // root zone holds everything
	}
	return name == origin || strings.HasSuffix(name, "."+origin)
}

// Server is an authoritative server over a set of zones.
type Server struct {
	// zones holds canonical origin -> *Zone behind an atomic pointer
	// with copy-on-write updates, giving zone lookups a contention-free,
	// allocation-free read path: a paper-scale scan issues one findZone
	// per query (plus one per glue target) from every scan worker
	// concurrently, and a process-wide RWMutex — even read-locked —
	// serializes those lookups on one cache line. Writers copy the map
	// under zmu; batch inserts with AddZones to build populations in
	// O(n) rather than one copy per zone.
	zmu   sync.Mutex
	zones atomic.Pointer[map[string]*Zone]

	// fallback, when installed, synthesizes zones for names no
	// registered zone covers — the streaming scan path's zone source
	// (derive-on-demand instead of 135 M registered zones).
	fallback atomic.Pointer[func(name string) *Zone]

	// OnQuery, when non-nil, observes every question handled. The lab
	// uses it to record which MX lookups each malware model performs.
	// It must be set before serving begins.
	OnQuery func(q dnsmsg.Question)

	inst atomic.Pointer[instruments]

	wg      sync.WaitGroup
	closeMu sync.Mutex
	closers []io.Closer
	closed  bool
}

// New returns a Server with no zones.
func New() *Server {
	s := &Server{}
	zones := make(map[string]*Zone)
	s.zones.Store(&zones)
	return s
}

// AddZone registers (or replaces) a zone.
func (s *Server) AddZone(z *Zone) {
	s.AddZones(z)
}

// AddZones registers (or replaces) zones in one copy-on-write step; use
// it over per-zone AddZone when loading a whole population.
func (s *Server) AddZones(zs ...*Zone) {
	s.zmu.Lock()
	defer s.zmu.Unlock()
	old := *s.zones.Load()
	zones := make(map[string]*Zone, len(old)+len(zs))
	for k, v := range old {
		zones[k] = v
	}
	for _, z := range zs {
		zones[z.Origin()] = z
	}
	s.zones.Store(&zones)
}

// RemoveZone drops the zone with the given origin.
func (s *Server) RemoveZone(origin string) {
	s.zmu.Lock()
	defer s.zmu.Unlock()
	old := *s.zones.Load()
	zones := make(map[string]*Zone, len(old))
	for k, v := range old {
		zones[k] = v
	}
	delete(zones, dnsmsg.CanonicalName(origin))
	s.zones.Store(&zones)
}

// Zone returns the zone with the given origin, or nil.
func (s *Server) Zone(origin string) *Zone {
	return (*s.zones.Load())[dnsmsg.CanonicalName(origin)]
}

// SetFallback installs fn (nil removes it) as the zone source of last
// resort: findZone consults it — with the canonical queried name — only
// after the registered zones, including a root zone, miss. The returned
// zone is used for that one answer and never registered, so fn may
// return a reused scratch zone; it then must only be called from one
// goroutine at a time (give each scan worker its own Server).
func (s *Server) SetFallback(fn func(name string) *Zone) {
	if fn == nil {
		s.fallback.Store(nil)
		return
	}
	s.fallback.Store(&fn)
}

// findZone returns the longest-suffix zone containing name.
func (s *Server) findZone(name string) *Zone {
	name = dnsmsg.CanonicalName(name)
	zones := *s.zones.Load()
	for candidate := name; ; {
		if z, ok := zones[candidate]; ok {
			return z
		}
		dot := strings.IndexByte(candidate, '.')
		if dot < 0 {
			break
		}
		candidate = candidate[dot+1:]
	}
	if z := zones[""]; z != nil {
		return z
	}
	if fb := s.fallback.Load(); fb != nil {
		return (*fb)(name)
	}
	return nil
}

const maxCNAMEChain = 8

// Handle answers a single query message. It never returns nil.
func (s *Server) Handle(q *dnsmsg.Message) *dnsmsg.Message {
	resp := &dnsmsg.Message{}
	s.HandleReuse(q, resp)
	return resp
}

// HandleReuse answers q into resp, truncating and reusing resp's section
// slices. It is the zero-allocation form of Handle for in-process callers
// on hot paths (the adoption scanner issues millions of queries per scan
// round through it): once resp's slices have grown to the largest answer,
// steady-state queries allocate nothing. Record data appended to resp is
// shared with the zone's stored records and must not be mutated.
func (s *Server) HandleReuse(q, resp *dnsmsg.Message) {
	s.handleInto(q, resp)
	if inst := s.inst.Load(); inst != nil {
		inst.countResponse(resp.Header.RCode)
	}
}

func (s *Server) handleInto(q, resp *dnsmsg.Message) {
	resp.Header = dnsmsg.Header{
		ID:               q.Header.ID,
		Response:         true,
		OpCode:           q.Header.OpCode,
		RecursionDesired: q.Header.RecursionDesired,
	}
	resp.Questions = append(resp.Questions[:0], q.Questions...)
	resp.Answers = resp.Answers[:0]
	resp.Authority = resp.Authority[:0]
	resp.Additional = resp.Additional[:0]
	if q.Header.OpCode != dnsmsg.OpQuery || len(q.Questions) != 1 {
		resp.Header.RCode = dnsmsg.RCodeNotImplemented
		return
	}
	question := q.Questions[0]
	if inst := s.inst.Load(); inst != nil {
		inst.countQuery(question.Type)
	}
	if s.OnQuery != nil {
		s.OnQuery(question)
	}
	if question.Class != dnsmsg.ClassINET && question.Class != dnsmsg.ClassANY {
		resp.Header.RCode = dnsmsg.RCodeNotImplemented
		return
	}
	zone := s.findZone(question.Name)
	if zone == nil {
		resp.Header.RCode = dnsmsg.RCodeRefused
		return
	}
	resp.Header.Authoritative = true

	name := dnsmsg.CanonicalName(question.Name)
	exists := false
	for i := 0; i < maxCNAMEChain; i++ {
		var ok bool
		n0 := len(resp.Answers)
		resp.Answers, ok = zone.LookupAppend(resp.Answers, name, question.Type)
		exists = exists || ok
		if len(resp.Answers) > n0 {
			break
		}
		// Chase a CNAME if present (and the query wasn't for CNAME).
		if question.Type == dnsmsg.TypeCNAME {
			break
		}
		resp.Answers, _ = zone.LookupAppend(resp.Answers, name, dnsmsg.TypeCNAME)
		if len(resp.Answers) == n0 {
			break
		}
		resp.Answers = resp.Answers[:n0+1] // follow only the first CNAME
		name = resp.Answers[n0].Data.(dnsmsg.CNAME).Target
	}

	if len(resp.Answers) == 0 && !exists {
		resp.Header.RCode = dnsmsg.RCodeNameError
		return
	}
	s.addGlue(zone, resp)
}

// addGlue appends A records for MX exchangers to the additional section,
// unless the answering zone is configured glue-less. Duplicate exchanger
// hosts are skipped by a linear scan over the answers already written —
// answer sections are a handful of records, so this beats building a set
// (and keeps HandleReuse allocation-free).
func (s *Server) addGlue(zone *Zone, resp *dnsmsg.Message) {
	if zone.noGlue.Load() {
		return
	}
	answers := resp.Answers
	for i, rr := range answers {
		mx, ok := rr.Data.(dnsmsg.MX)
		if !ok {
			continue
		}
		dup := false
		for _, prev := range answers[:i] {
			if pmx, ok := prev.Data.(dnsmsg.MX); ok && pmx.Host == mx.Host {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		gz := s.findZone(mx.Host)
		if gz == nil {
			continue
		}
		resp.Additional, _ = gz.LookupAppend(resp.Additional, mx.Host, dnsmsg.TypeA)
	}
}

// Exchange is the wire-level entry point used by the in-process transport:
// unpack, handle, pack.
func (s *Server) Exchange(query []byte) ([]byte, error) {
	q, err := dnsmsg.Unpack(query)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: bad query: %w", err)
	}
	return s.Handle(q).Pack()
}

// ServePacket answers queries arriving on pc (UDP) until pc is closed. It
// runs in the calling goroutine; use Go-style `go srv.ServePacket(pc)` or
// ListenAndServeUDP.
func (s *Server) ServePacket(pc net.PacketConn) error {
	buf := make([]byte, 4096)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("dnsserver: read: %w", err)
		}
		resp, err := s.Exchange(buf[:n])
		if err != nil {
			continue // drop malformed packets, like real servers
		}
		if _, err := pc.WriteTo(resp, addr); err != nil && errors.Is(err, net.ErrClosed) {
			return nil
		}
	}
}

// ListenAndServeUDP binds a UDP socket on addr and serves it in a tracked
// goroutine until Close. It returns the bound address (useful with ":0").
func (s *Server) ListenAndServeUDP(addr string) (net.Addr, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	if !s.track(pc) {
		pc.Close()
		return nil, errors.New("dnsserver: server closed")
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.ServePacket(pc)
	}()
	return pc.LocalAddr(), nil
}

// ServeTCP answers length-prefixed queries on l until l is closed.
func (s *Server) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("dnsserver: accept: %w", err)
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveTCPConn(conn)
		}()
	}
}

func (s *Server) serveTCPConn(conn net.Conn) {
	defer conn.Close()
	for {
		var lenbuf [2]byte
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			return
		}
		n := int(lenbuf[0])<<8 | int(lenbuf[1])
		query := make([]byte, n)
		if _, err := io.ReadFull(conn, query); err != nil {
			return
		}
		resp, err := s.Exchange(query)
		if err != nil {
			return
		}
		out := make([]byte, 2+len(resp))
		out[0] = byte(len(resp) >> 8)
		out[1] = byte(len(resp))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func (s *Server) track(c io.Closer) bool {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return false
	}
	s.closers = append(s.closers, c)
	return true
}

// Close shuts down every transport started through the server and waits for
// their goroutines to drain.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	closers := s.closers
	s.closers = nil
	s.closeMu.Unlock()
	for _, c := range closers {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
