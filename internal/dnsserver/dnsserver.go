// Package dnsserver implements a small authoritative DNS server over the
// dnsmsg wire format. It plays two roles in the reproduction:
//
//   - In the contained lab (Section III of the paper), it is the forged DNS
//     the malware models talk to: every MX query is answered with records
//     pointing at the instrumented mail server, exactly as the authors
//     intercepted MX requests from the infected VM.
//   - In the adoption study (Section IV-A), it serves the synthetic
//     Internet's zones to the zmap-style scanner, including the
//     misconfiguration modes the paper encountered (missing MX glue that
//     forces a second lookup, unresolvable MX records).
//
// The server answers from in-memory zones, supports exact-name matching with
// CNAME chasing inside a zone, the ANY pseudo-query, and MX glue in the
// additional section. It serves real UDP (datagram) and TCP (two-octet
// length-prefixed) transports and an in-process Handle path for simulations.
package dnsserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dnsmsg"
)

// Zone holds the records of a single origin (e.g. "foo.net"). A Zone is
// safe for concurrent use.
type Zone struct {
	origin string

	mu      sync.RWMutex
	records map[string][]dnsmsg.RR // canonical owner name -> RRs
	// noGlue suppresses additional-section A records for MX targets,
	// modelling the paper's "MX records that were not properly
	// resolved" that forced their parallel scanner to re-resolve.
	noGlue bool
}

// NewZone returns an empty zone for origin.
func NewZone(origin string) *Zone {
	return &Zone{
		origin:  dnsmsg.CanonicalName(origin),
		records: make(map[string][]dnsmsg.RR),
	}
}

// Origin returns the zone origin (canonical form).
func (z *Zone) Origin() string { return z.origin }

// SetNoGlue controls whether MX answers include the exchangers' A records
// in the additional section. Glue is included by default.
func (z *Zone) SetNoGlue(noGlue bool) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.noGlue = noGlue
}

// Add inserts a record. The owner name must be within the zone.
func (z *Zone) Add(rr dnsmsg.RR) error {
	name := dnsmsg.CanonicalName(rr.Name)
	if !nameInZone(name, z.origin) {
		return fmt.Errorf("dnsserver: %q is not in zone %q", rr.Name, z.origin)
	}
	rr.Name = name
	if rr.Class == 0 {
		rr.Class = dnsmsg.ClassINET
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	z.records[name] = append(z.records[name], rr)
	return nil
}

// MustAdd is Add that panics on error; for fixtures.
func (z *Zone) MustAdd(rr dnsmsg.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// Remove deletes all records of the given type at name. Type ANY removes
// every record at the name.
func (z *Zone) Remove(name string, t dnsmsg.Type) {
	name = dnsmsg.CanonicalName(name)
	z.mu.Lock()
	defer z.mu.Unlock()
	if t == dnsmsg.TypeANY {
		delete(z.records, name)
		return
	}
	var kept []dnsmsg.RR
	for _, rr := range z.records[name] {
		if rr.Type != t {
			kept = append(kept, rr)
		}
	}
	if len(kept) == 0 {
		delete(z.records, name)
	} else {
		z.records[name] = kept
	}
}

// Lookup returns the records of type t at name (ANY returns all), and
// whether the name exists at all (to distinguish NODATA from NXDOMAIN).
func (z *Zone) Lookup(name string, t dnsmsg.Type) (rrs []dnsmsg.RR, nameExists bool) {
	name = dnsmsg.CanonicalName(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	all, ok := z.records[name]
	if !ok {
		return nil, false
	}
	for _, rr := range all {
		if t == dnsmsg.TypeANY || rr.Type == t {
			rrs = append(rrs, rr)
		}
	}
	return rrs, true
}

// Names returns every owner name in the zone, sorted; used by the scan
// dataset builder.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]string, 0, len(z.records))
	for n := range z.records {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func nameInZone(name, origin string) bool {
	if origin == "" {
		return true // root zone holds everything
	}
	return name == origin || strings.HasSuffix(name, "."+origin)
}

// Server is an authoritative server over a set of zones.
type Server struct {
	mu    sync.RWMutex
	zones map[string]*Zone

	// OnQuery, when non-nil, observes every question handled. The lab
	// uses it to record which MX lookups each malware model performs.
	// It must be set before serving begins.
	OnQuery func(q dnsmsg.Question)

	inst atomic.Pointer[instruments]

	wg      sync.WaitGroup
	closeMu sync.Mutex
	closers []io.Closer
	closed  bool
}

// New returns a Server with no zones.
func New() *Server {
	return &Server{zones: make(map[string]*Zone)}
}

// AddZone registers (or replaces) a zone.
func (s *Server) AddZone(z *Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin()] = z
}

// RemoveZone drops the zone with the given origin.
func (s *Server) RemoveZone(origin string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, dnsmsg.CanonicalName(origin))
}

// Zone returns the zone with the given origin, or nil.
func (s *Server) Zone(origin string) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.zones[dnsmsg.CanonicalName(origin)]
}

// findZone returns the longest-suffix zone containing name.
func (s *Server) findZone(name string) *Zone {
	name = dnsmsg.CanonicalName(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for candidate := name; ; {
		if z, ok := s.zones[candidate]; ok {
			return z
		}
		dot := strings.IndexByte(candidate, '.')
		if dot < 0 {
			break
		}
		candidate = candidate[dot+1:]
	}
	if z, ok := s.zones[""]; ok {
		return z
	}
	return nil
}

const maxCNAMEChain = 8

// Handle answers a single query message. It never returns nil.
func (s *Server) Handle(q *dnsmsg.Message) *dnsmsg.Message {
	if inst := s.inst.Load(); inst != nil {
		resp := s.handle(q)
		inst.countResponse(resp.Header.RCode)
		return resp
	}
	return s.handle(q)
}

func (s *Server) handle(q *dnsmsg.Message) *dnsmsg.Message {
	resp := q.Reply()
	if q.Header.OpCode != dnsmsg.OpQuery || len(q.Questions) != 1 {
		resp.Header.RCode = dnsmsg.RCodeNotImplemented
		return resp
	}
	question := q.Questions[0]
	if inst := s.inst.Load(); inst != nil {
		inst.countQuery(question.Type)
	}
	if s.OnQuery != nil {
		s.OnQuery(question)
	}
	if question.Class != dnsmsg.ClassINET && question.Class != dnsmsg.ClassANY {
		resp.Header.RCode = dnsmsg.RCodeNotImplemented
		return resp
	}
	zone := s.findZone(question.Name)
	if zone == nil {
		resp.Header.RCode = dnsmsg.RCodeRefused
		return resp
	}
	resp.Header.Authoritative = true

	name := dnsmsg.CanonicalName(question.Name)
	exists := false
	for i := 0; i < maxCNAMEChain; i++ {
		rrs, ok := zone.Lookup(name, question.Type)
		exists = exists || ok
		if len(rrs) > 0 {
			resp.Answers = append(resp.Answers, rrs...)
			break
		}
		// Chase a CNAME if present (and the query wasn't for CNAME).
		if question.Type == dnsmsg.TypeCNAME {
			break
		}
		cnames, _ := zone.Lookup(name, dnsmsg.TypeCNAME)
		if len(cnames) == 0 {
			break
		}
		resp.Answers = append(resp.Answers, cnames[0])
		name = cnames[0].Data.(dnsmsg.CNAME).Target
	}

	if len(resp.Answers) == 0 && !exists {
		resp.Header.RCode = dnsmsg.RCodeNameError
		return resp
	}
	s.addGlue(zone, resp)
	return resp
}

// addGlue appends A records for MX exchangers to the additional section,
// unless the answering zone is configured glue-less.
func (s *Server) addGlue(zone *Zone, resp *dnsmsg.Message) {
	zone.mu.RLock()
	noGlue := zone.noGlue
	zone.mu.RUnlock()
	if noGlue {
		return
	}
	seen := make(map[string]bool)
	for _, rr := range resp.Answers {
		mx, ok := rr.Data.(dnsmsg.MX)
		if !ok || seen[mx.Host] {
			continue
		}
		seen[mx.Host] = true
		gz := s.findZone(mx.Host)
		if gz == nil {
			continue
		}
		if as, _ := gz.Lookup(mx.Host, dnsmsg.TypeA); len(as) > 0 {
			resp.Additional = append(resp.Additional, as...)
		}
	}
}

// Exchange is the wire-level entry point used by the in-process transport:
// unpack, handle, pack.
func (s *Server) Exchange(query []byte) ([]byte, error) {
	q, err := dnsmsg.Unpack(query)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: bad query: %w", err)
	}
	return s.Handle(q).Pack()
}

// ServePacket answers queries arriving on pc (UDP) until pc is closed. It
// runs in the calling goroutine; use Go-style `go srv.ServePacket(pc)` or
// ListenAndServeUDP.
func (s *Server) ServePacket(pc net.PacketConn) error {
	buf := make([]byte, 4096)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("dnsserver: read: %w", err)
		}
		resp, err := s.Exchange(buf[:n])
		if err != nil {
			continue // drop malformed packets, like real servers
		}
		if _, err := pc.WriteTo(resp, addr); err != nil && errors.Is(err, net.ErrClosed) {
			return nil
		}
	}
}

// ListenAndServeUDP binds a UDP socket on addr and serves it in a tracked
// goroutine until Close. It returns the bound address (useful with ":0").
func (s *Server) ListenAndServeUDP(addr string) (net.Addr, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	if !s.track(pc) {
		pc.Close()
		return nil, errors.New("dnsserver: server closed")
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.ServePacket(pc)
	}()
	return pc.LocalAddr(), nil
}

// ServeTCP answers length-prefixed queries on l until l is closed.
func (s *Server) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("dnsserver: accept: %w", err)
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveTCPConn(conn)
		}()
	}
}

func (s *Server) serveTCPConn(conn net.Conn) {
	defer conn.Close()
	for {
		var lenbuf [2]byte
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			return
		}
		n := int(lenbuf[0])<<8 | int(lenbuf[1])
		query := make([]byte, n)
		if _, err := io.ReadFull(conn, query); err != nil {
			return
		}
		resp, err := s.Exchange(query)
		if err != nil {
			return
		}
		out := make([]byte, 2+len(resp))
		out[0] = byte(len(resp) >> 8)
		out[1] = byte(len(resp))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func (s *Server) track(c io.Closer) bool {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return false
	}
	s.closers = append(s.closers, c)
	return true
}

// Close shuts down every transport started through the server and waits for
// their goroutines to drain.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	closers := s.closers
	s.closers = nil
	s.closeMu.Unlock()
	for _, c := range closers {
		c.Close()
	}
	s.wg.Wait()
	return nil
}
