package dnsserver

import (
	"strings"
	"testing"

	"repro/internal/dnsmsg"
	"repro/internal/metrics"
)

// TestMetricsCountQueriesAndRcodes drives Handle through its rcode paths
// and checks the qtype and rcode counters, including the NXDOMAIN series
// the adoption study's scanner rate is computed from.
func TestMetricsCountQueriesAndRcodes(t *testing.T) {
	s := testServer(t)
	reg := metrics.NewRegistry()
	s.Register(reg)

	s.Handle(dnsmsg.NewQuery(1, "foo.net", dnsmsg.TypeMX))        // noerror
	s.Handle(dnsmsg.NewQuery(2, "smtp.foo.net", dnsmsg.TypeA))    // noerror
	s.Handle(dnsmsg.NewQuery(3, "nope.foo.net", dnsmsg.TypeA))    // nxdomain
	s.Handle(dnsmsg.NewQuery(4, "bar.org", dnsmsg.TypeA))         // refused (no zone)
	s.Handle(dnsmsg.NewQuery(5, "foo.net", dnsmsg.Type(99)))      // unknown qtype -> other
	notQuery := dnsmsg.NewQuery(6, "foo.net", dnsmsg.TypeA)
	notQuery.Header.OpCode = 2 // STATUS
	s.Handle(notQuery) // notimpl, counted as a response but not a question

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`dns_queries_total{qtype="MX"} 1` + "\n",
		`dns_queries_total{qtype="A"} 3` + "\n",
		`dns_queries_total{qtype="other"} 1` + "\n",
		`dns_responses_total{rcode="noerror"} 3` + "\n", // MX, A, unknown-qtype NODATA
		`dns_responses_total{rcode="nxdomain"} 1` + "\n",
		`dns_responses_total{rcode="refused"} 1` + "\n",
		`dns_responses_total{rcode="notimpl"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
