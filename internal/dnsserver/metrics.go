package dnsserver

import (
	"repro/internal/dnsmsg"
	"repro/internal/metrics"
)

// instruments holds the per-query metric handles; nil until Register is
// called, so uninstrumented servers pay one atomic load per Handle.
type instruments struct {
	// queries maps qtype -> counter, built once at Register and read-only
	// afterwards. Types outside the repertoire land in other.
	queries map[dnsmsg.Type]*metrics.Counter
	other   *metrics.Counter

	rcNoError  *metrics.Counter
	rcNXDomain *metrics.Counter
	rcRefused  *metrics.Counter
	rcNotImpl  *metrics.Counter
}

// queryTypes is the qtype repertoire exported with a pre-registered
// counter each, so dashboards see every series (at 0) from the first
// scrape. Label values come from dnsmsg.Type.String().
var queryTypes = []dnsmsg.Type{
	dnsmsg.TypeA, dnsmsg.TypeNS, dnsmsg.TypeCNAME, dnsmsg.TypeSOA,
	dnsmsg.TypePTR, dnsmsg.TypeMX, dnsmsg.TypeTXT, dnsmsg.TypeAAAA,
	dnsmsg.TypeANY,
}

// Register exports the DNS server's counters into reg:
//
//	dns_queries_total{qtype}    questions handled by query type
//	dns_responses_total{rcode}  responses by rcode
//	                            (noerror|nxdomain|refused|notimpl)
//
// The NXDOMAIN rate the adoption study cares about (names probed by the
// zmap-style scanner that do not exist) is
// dns_responses_total{rcode="nxdomain"} / sum(dns_queries_total).
func (s *Server) Register(reg *metrics.Registry) {
	inst := &instruments{
		queries: make(map[dnsmsg.Type]*metrics.Counter, len(queryTypes)),
		other: reg.Counter("dns_queries_total",
			"DNS questions handled by query type.", "qtype", "other"),
		rcNoError: reg.Counter("dns_responses_total",
			"DNS responses by rcode.", "rcode", "noerror"),
		rcNXDomain: reg.Counter("dns_responses_total",
			"DNS responses by rcode.", "rcode", "nxdomain"),
		rcRefused: reg.Counter("dns_responses_total",
			"DNS responses by rcode.", "rcode", "refused"),
		rcNotImpl: reg.Counter("dns_responses_total",
			"DNS responses by rcode.", "rcode", "notimpl"),
	}
	for _, t := range queryTypes {
		inst.queries[t] = reg.Counter("dns_queries_total",
			"DNS questions handled by query type.", "qtype", t.String())
	}
	s.inst.Store(inst)
}

// countQuery attributes one question to its qtype counter.
func (inst *instruments) countQuery(t dnsmsg.Type) {
	if c, ok := inst.queries[t]; ok {
		c.Inc()
		return
	}
	inst.other.Inc()
}

// countResponse attributes one answer to its rcode counter.
func (inst *instruments) countResponse(rcode dnsmsg.RCode) {
	switch rcode {
	case dnsmsg.RCodeSuccess:
		inst.rcNoError.Inc()
	case dnsmsg.RCodeNameError:
		inst.rcNXDomain.Inc()
	case dnsmsg.RCodeRefused:
		inst.rcRefused.Inc()
	case dnsmsg.RCodeNotImplemented:
		inst.rcNotImpl.Inc()
	}
}
