package bypass

import (
	"testing"
	"time"

	"repro/internal/greylist"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// The chain's performance contract: with all three production stages
// enabled and warm, the chain-negative path (every stage misses, the
// triplet dance decides) and the known-passed path must allocate
// nothing — the bypass chain rides the same per-RCPT hot path the seed
// pinned at 0 allocs/op, and BenchmarkBareTriplet alongside measures
// what the chain itself costs over the bare check.

// benchEngine builds a greylister fronted by the full stage set, with
// every DNS answer pre-warmed into the stage caches.
func benchEngine(tb testing.TB, threshold time.Duration) (*greylist.Greylister, *simtime.Sim, greylist.Triplet) {
	e := newEnv(tb)
	p := greylist.DefaultPolicy()
	p.Threshold = threshold
	p.EarnedLifetime = 35 * 24 * time.Hour
	g := greylist.New(p, e.clock)
	g.SetChain(greylist.NewChain(
		greylist.WhitelistStage(g.Whitelist()),
		e.spfStage(),
		DNSWL(e.res, "wl.example", CacheConfig{Clock: e.clock}),
		RDNS(e.res, CacheConfig{Clock: e.clock}),
	))
	// 203.0.113.9 is chain-negative everywhere: not whitelisted, SPF
	// Fail for bulk.example, not DNSWL-listed, no PTR.
	tr := trip("203.0.113.9", "news@bulk.example")
	g.Check(tr) // warm every stage cache
	return g, e.clock, tr
}

func BenchmarkCheckChainNegative(b *testing.B) {
	g, _, tr := benchEngine(b, 300*time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(tr)
	}
}

func BenchmarkCheckChainKnownPassed(b *testing.B) {
	g, clock, tr := benchEngine(b, 300*time.Second)
	clock.Advance(301 * time.Second)
	if v := g.Check(tr); v.Reason != greylist.ReasonRetryAccepted {
		b.Fatalf("warmup verdict = %+v", v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(tr)
	}
}

// BenchmarkBareTriplet is the no-chain baseline the two benchmarks
// above are read against: the artifact's "chain-negative overhead" is
// ChainNegative minus this.
func BenchmarkBareTriplet(b *testing.B) {
	clock := simtime.NewSim(simtime.Epoch)
	p := greylist.DefaultPolicy()
	p.Threshold = 300 * time.Second
	g := greylist.New(p, clock)
	tr := trip("203.0.113.9", "news@bulk.example")
	g.Check(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(tr)
	}
}

// TestHotPathAllocs enforces in the ordinary test run what the
// benchmarks report: 0 allocs/op for chain-negative and known-passed
// checks with every stage enabled.
func TestHotPathAllocs(t *testing.T) {
	g, clock, tr := benchEngine(t, 300*time.Second)
	if a := testing.AllocsPerRun(200, func() { g.Check(tr) }); a != 0 {
		t.Errorf("chain-negative Check allocates %.1f/op", a)
	}
	clock.Advance(301 * time.Second)
	if v := g.Check(tr); v.Reason != greylist.ReasonRetryAccepted {
		t.Fatalf("promote verdict = %+v", v)
	}
	if a := testing.AllocsPerRun(200, func() { g.Check(tr) }); a != 0 {
		t.Errorf("known-passed Check allocates %.1f/op", a)
	}
	// The earned fast path (granted by the promote above, keyed by the
	// client) must be allocation-free too.
	earned := trip("203.0.113.9", "other@elsewhere.example")
	if v := g.Check(earned); v.Reason != greylist.ReasonEarnedWhitelist {
		t.Fatalf("earned verdict = %+v", v)
	}
	if a := testing.AllocsPerRun(200, func() { g.Check(earned) }); a != 0 {
		t.Errorf("earned Check allocates %.1f/op", a)
	}
}

// benchEngineObserved is benchEngine with the live observatory's
// verdict observer installed — the configuration a production greylistd
// with -admin-addr runs. The warm check after SetObserver seeds the
// top-K tables so the steady state is a monitored-key map hit.
func benchEngineObserved(tb testing.TB, threshold time.Duration) (*greylist.Greylister, *simtime.Sim, greylist.Triplet) {
	g, clock, tr := benchEngine(tb, threshold)
	o := obs.New(obs.Config{Clock: clock})
	g.SetObserver(o.Greylist())
	o.WatchGreylist(g.Stats)
	g.Check(tr)
	return g, clock, tr
}

// TestHotPathAllocsObserved extends the 0 allocs/op contract to the
// observatory-enabled engine: sketch records are per-window atomics,
// counters are only polled at rotation, and observing a monitored
// top-K key is a map hit — so turning the observatory on must not cost
// the hot path a single allocation.
func TestHotPathAllocsObserved(t *testing.T) {
	g, clock, tr := benchEngineObserved(t, 300*time.Second)
	if a := testing.AllocsPerRun(200, func() { g.Check(tr) }); a != 0 {
		t.Errorf("observed chain-negative Check allocates %.1f/op", a)
	}
	clock.Advance(301 * time.Second)
	if v := g.Check(tr); v.Reason != greylist.ReasonRetryAccepted {
		t.Fatalf("promote verdict = %+v", v)
	}
	if a := testing.AllocsPerRun(200, func() { g.Check(tr) }); a != 0 {
		t.Errorf("observed known-passed Check allocates %.1f/op", a)
	}
	earned := trip("203.0.113.9", "other@elsewhere.example")
	if v := g.Check(earned); v.Reason != greylist.ReasonEarnedWhitelist {
		t.Fatalf("earned verdict = %+v", v)
	}
	if a := testing.AllocsPerRun(200, func() { g.Check(earned) }); a != 0 {
		t.Errorf("observed earned Check allocates %.1f/op", a)
	}
}

func BenchmarkCheckChainNegativeObserved(b *testing.B) {
	g, _, tr := benchEngineObserved(b, 300*time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(tr)
	}
}

func BenchmarkCheckChainKnownPassedObserved(b *testing.B) {
	g, clock, tr := benchEngineObserved(b, 300*time.Second)
	clock.Advance(301 * time.Second)
	if v := g.Check(tr); v.Reason != greylist.ReasonRetryAccepted {
		b.Fatalf("warmup verdict = %+v", v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(tr)
	}
}
