package bypass

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dnsbl"
	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/greylist"
	"repro/internal/simtime"
	"repro/internal/spf"
)

// testEnv is a DNS universe with one SPF-publishing domain
// (bulk.example authorizing 192.0.2.0/24), one DNSWL (wl.example,
// listing 198.51.100.7), and PTR names for a mail server
// (203.0.113.25 -> smtp1.provider.example) and a dial-up pool host
// (203.0.113.80 -> 80-113-0-203.dyn.isp.example).
type testEnv struct {
	dns   *dnsserver.Server
	res   *dnsresolver.Resolver
	clock *simtime.Sim
	wl    *dnsbl.List
	down  bool
}

func newEnv(t testing.TB) *testEnv {
	t.Helper()
	e := &testEnv{dns: dnsserver.New(), clock: simtime.NewSim(simtime.Epoch)}

	z := dnsserver.NewZone("bulk.example")
	z.MustAdd(dnsmsg.RR{Name: "bulk.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: spf.Record("ip4:192.0.2.0/24", "-all")})
	e.dns.AddZone(z)

	e.wl = dnsbl.New("wl.example", e.dns, e.clock)
	if err := e.wl.Add("198.51.100.7"); err != nil {
		t.Fatal(err)
	}

	ptr := dnsserver.NewZone("in-addr.arpa")
	ptr.MustAdd(dnsmsg.RR{Name: "25.113.0.203.in-addr.arpa", Type: dnsmsg.TypePTR, TTL: 300,
		Data: dnsmsg.PTR{Target: "smtp1.provider.example"}})
	ptr.MustAdd(dnsmsg.RR{Name: "80.113.0.203.in-addr.arpa", Type: dnsmsg.TypePTR, TTL: 300,
		Data: dnsmsg.PTR{Target: "80-113-0-203.dyn.isp.example"}})
	e.dns.AddZone(ptr)

	direct := dnsresolver.Direct(e.dns)
	flaky := dnsresolver.TransportFunc(func(q *dnsmsg.Message) (*dnsmsg.Message, error) {
		if e.down {
			return nil, errors.New("dns unreachable")
		}
		return direct.Exchange(q)
	})
	e.res = dnsresolver.New(flaky, e.clock)
	e.res.DisableCache = true
	return e
}

func (e *testEnv) spfStage() *SPFStage {
	return SPF(spf.NewCached(spf.New(e.res), spf.CacheConfig{Clock: e.clock}))
}

func trip(ip, sender string) greylist.Triplet {
	return greylist.Triplet{ClientIP: ip, Sender: sender, Recipient: "u@victim.example"}
}

func TestSPFStage(t *testing.T) {
	e := newEnv(t)
	s := e.spfStage()

	out, err := s.Eval(trip("192.0.2.10", "news@bulk.example"))
	if err != nil || out.Action != greylist.StageRekey || out.Domain != "bulk.example" {
		t.Fatalf("authorized IP = %+v, %v; want rekey/bulk.example", out, err)
	}
	// SPF Fail is a skip: rejecting is the MTA's call, not the chain's.
	out, err = s.Eval(trip("203.0.113.9", "news@bulk.example"))
	if err != nil || out.Action != greylist.StageSkip {
		t.Fatalf("unauthorized IP = %+v, %v; want skip", out, err)
	}
	// Null sender: skip without DNS traffic.
	q0, _ := e.res.Stats()
	out, err = s.Eval(trip("192.0.2.10", ""))
	if err != nil || out.Action != greylist.StageSkip {
		t.Fatalf("null sender = %+v, %v", out, err)
	}
	if q1, _ := e.res.Stats(); q1 != q0 {
		t.Fatalf("null sender hit the resolver (%d -> %d queries)", q0, q1)
	}
}

func TestSPFStageTempErrorFailsOpen(t *testing.T) {
	e := newEnv(t)
	s := e.spfStage()
	e.down = true
	out, err := s.Eval(trip("192.0.2.10", "news@bulk.example"))
	if err == nil || out.Action != greylist.StageSkip {
		t.Fatalf("DNS-down eval = %+v, %v; want skip with error", out, err)
	}
	// Behind a chain the error means plain greylisting, not a crash or
	// a bypass.
	g := greylist.New(greylist.DefaultPolicy(), e.clock)
	g.SetChain(greylist.NewChain(s))
	if v := g.Check(trip("192.0.2.10", "news@bulk.example")); v.Decision != greylist.Defer {
		t.Fatalf("verdict with DNS down = %+v, want defer", v)
	}
	if st := g.Chain().StageStats(); st[0].Errors != 1 {
		t.Fatalf("stage errors = %+v", st)
	}
}

func TestDNSWLStage(t *testing.T) {
	e := newEnv(t)
	s := DNSWL(e.res, "wl.example", CacheConfig{Clock: e.clock})

	out, err := s.Eval(trip("198.51.100.7", "a@b.example"))
	if err != nil || out.Action != greylist.StageBypass || out.Reason != greylist.ReasonDNSWL {
		t.Fatalf("listed client = %+v, %v", out, err)
	}
	out, err = s.Eval(trip("198.51.100.8", "a@b.example"))
	if err != nil || out.Action != greylist.StageSkip {
		t.Fatalf("unlisted client = %+v, %v", out, err)
	}
	// Second eval answers from the cache: no new resolver queries.
	q0, _ := e.res.Stats()
	if out, _ := s.Eval(trip("198.51.100.7", "a@b.example")); out.Action != greylist.StageBypass {
		t.Fatalf("cached eval = %+v", out)
	}
	if q1, _ := e.res.Stats(); q1 != q0 {
		t.Fatalf("cached eval hit the resolver")
	}
	// A garbage client IP is an error (counted, failed open), not a lie.
	if _, err := s.Eval(trip("not-an-ip", "a@b.example")); err == nil {
		t.Fatal("garbage IP produced no error")
	}
	// Cache entries expire: delist, advance past the TTL, re-ask.
	if err := e.wl.Remove("198.51.100.7"); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour)
	if out, _ := s.Eval(trip("198.51.100.7", "a@b.example")); out.Action != greylist.StageSkip {
		t.Fatalf("post-delist eval = %+v, want skip", out)
	}
}

func TestRDNSStage(t *testing.T) {
	e := newEnv(t)
	s := RDNS(e.res, CacheConfig{Clock: e.clock})

	out, err := s.Eval(trip("203.0.113.25", "a@b.example"))
	if err != nil || out.Action != greylist.StageBypass || out.Reason != greylist.ReasonRDNS {
		t.Fatalf("mail-server PTR = %+v, %v", out, err)
	}
	// Dynamic-pool PTR and missing PTR both skip.
	if out, err := s.Eval(trip("203.0.113.80", "a@b.example")); err != nil || out.Action != greylist.StageSkip {
		t.Fatalf("pool PTR = %+v, %v", out, err)
	}
	if out, err := s.Eval(trip("203.0.113.99", "a@b.example")); err != nil || out.Action != greylist.StageSkip {
		t.Fatalf("no PTR = %+v, %v", out, err)
	}
	// Cached: no resolver traffic on repeats.
	q0, _ := e.res.Stats()
	s.Eval(trip("203.0.113.25", "a@b.example"))
	s.Eval(trip("203.0.113.80", "a@b.example"))
	if q1, _ := e.res.Stats(); q1 != q0 {
		t.Fatal("cached evals hit the resolver")
	}
	// DNS down on a cache miss: error, fail open.
	e.down = true
	if _, err := s.Eval(trip("203.0.113.42", "a@b.example")); err == nil {
		t.Fatal("DNS-down eval produced no error")
	}
	// The cached mail server still bypasses during the outage.
	if out, err := s.Eval(trip("203.0.113.25", "a@b.example")); err != nil || out.Action != greylist.StageBypass {
		t.Fatalf("cached eval during outage = %+v, %v", out, err)
	}
}

func TestLooksLikeMailServer(t *testing.T) {
	yes := []string{
		"smtp1.provider.example",
		"mail.tiny.example",
		"MX7.BIG.EXAMPLE",
		"out4.bulk.example",
		"relay-3.isp.example",
	}
	no := []string{
		"1-2-3-4.dyn.isp.example",
		"mail.pool.isp.example", // pool veto beats the mail token
		"dsl-66-163-1-2.isp.example",
		"host99.isp.example",
		"",
	}
	for _, h := range yes {
		if !LooksLikeMailServer(h) {
			t.Errorf("LooksLikeMailServer(%q) = false", h)
		}
	}
	for _, h := range no {
		if LooksLikeMailServer(h) {
			t.Errorf("LooksLikeMailServer(%q) = true", h)
		}
	}
}

// TestStagesConcurrent hammers all three stages from many goroutines
// while the caches churn; -race is the assertion.
func TestStagesConcurrent(t *testing.T) {
	e := newEnv(t)
	stages := []greylist.Stage{e.spfStage(), DNSWL(e.res, "wl.example", CacheConfig{Clock: e.clock}), RDNS(e.res, CacheConfig{Clock: e.clock})}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ip := fmt.Sprintf("192.0.2.%d", (w*37+i)%256)
				for _, s := range stages {
					s.Eval(trip(ip, "news@bulk.example"))
				}
			}
		}()
	}
	wg.Wait()
}

// TestCacheBound keeps the per-IP caches from growing without limit
// under unique-IP churn.
func TestCacheBound(t *testing.T) {
	e := newEnv(t)
	s := DNSWL(e.res, "wl.example", CacheConfig{Clock: e.clock, MaxEntries: 64})
	for i := 0; i < 300; i++ {
		s.Eval(trip(fmt.Sprintf("10.9.%d.%d", i/250, i%250), "a@b.example"))
	}
	if n := s.cache.entries(); n > 64 {
		t.Fatalf("cache grew to %d entries past the 64 bound", n)
	}
}
