// Package bypass provides the production stages of the greylisting
// bypass chain (internal/greylist.Chain): SPF evaluation with
// SPF-domain re-keying, DNS whitelist lookups, and a reverse-DNS
// "looks like a mail server" heuristic.
//
// The paper measures greylisting's costs as well as its effect: every
// legitimate first-contact delivery eats the triplet delay (Section VI
// weighs this against the spam blocked). The filters that grew out of
// that trade-off — spfgreylist keying the greylist by SPF domain,
// grayland waiving the dance for DNSWL-listed and mail-server-named
// clients — all try to spend the delay only on senders that look like
// bots. Each heuristic is also an attack surface: a bot that publishes
// its own SPF record or acquires a flattering PTR name walks past the
// stage. The lab's bypass experiment measures exactly that trade, per
// stage, per bot family.
//
// Every stage here follows the chain's contract: answer from a warmed
// cache without allocating (the chain-negative path through all three
// stages is benchmark-pinned at 0 allocs/op), and return errors rather
// than guessing when the DNS is unreachable — the chain counts the
// error and fails open to plain greylisting.
package bypass

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsbl"
	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/greylist"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/smtpproto"
	"repro/internal/spf"
)

// SPFStage evaluates the sender domain's SPF policy and, on Pass,
// re-keys the greylist by that domain: any outbound IP the domain
// authorizes continues the same triplet dance, so a provider rotating
// through a pool never restarts the delay (the spfgreylist behaviour).
//
// Results other than Pass skip — SPF Fail is not this stage's business
// to reject (the MTA's SPF policy handles that); greylisting proceeds
// normally. TempError returns an error so the chain counts the DNS
// trouble and fails open.
type SPFStage struct {
	checker *spf.CachedChecker
}

// SPF builds the stage over a cached checker (the cache is what keeps
// repeat evaluations off the wire and off the allocator).
func SPF(checker *spf.CachedChecker) *SPFStage { return &SPFStage{checker: checker} }

// Name implements greylist.Stage.
func (s *SPFStage) Name() string { return "spf" }

// Eval implements greylist.Stage.
func (s *SPFStage) Eval(t greylist.Triplet) (greylist.StageOutcome, error) {
	domain := smtpproto.DomainOf(t.Sender)
	if domain == "" {
		// Null sender (bounces): nothing to evaluate without a HELO,
		// which the triplet does not carry.
		return greylist.StageOutcome{}, nil
	}
	res, err := s.checker.Check(t.ClientIP, t.Sender, "")
	switch res {
	case spf.ResultPass:
		return greylist.StageOutcome{Action: greylist.StageRekey, Domain: domain}, nil
	case spf.ResultTempError:
		return greylist.StageOutcome{}, err
	}
	return greylist.StageOutcome{}, nil
}

// Register exports the underlying checker's spf_* counters.
func (s *SPFStage) Register(reg *metrics.Registry) { s.checker.Register(reg) }

// cacheEntry is one memoized boolean DNS answer.
type cacheEntry struct {
	yes     bool
	expires int64 // unix ns
}

// boolCache memoizes per-client-IP yes/no DNS answers for the DNSWL
// and rDNS stages. Reads take the read lock and allocate nothing (the
// key is the triplet's ClientIP string as-is).
type boolCache struct {
	clock      simtime.Clock
	ttl        time.Duration
	maxEntries int

	mu    sync.RWMutex
	cache map[string]cacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newBoolCache(clock simtime.Clock, ttl time.Duration, maxEntries int) *boolCache {
	return &boolCache{
		clock:      clock,
		ttl:        ttl,
		maxEntries: maxEntries,
		cache:      make(map[string]cacheEntry),
	}
}

func (c *boolCache) get(ip string) (bool, bool) {
	now := c.clock.Now().UnixNano()
	c.mu.RLock()
	e, ok := c.cache[ip]
	c.mu.RUnlock()
	if ok && now < e.expires {
		c.hits.Add(1)
		return e.yes, true
	}
	c.misses.Add(1)
	return false, false
}

func (c *boolCache) put(ip string, yes bool) {
	now := c.clock.Now().UnixNano()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cache) >= c.maxEntries {
		for k, e := range c.cache {
			if len(c.cache) < c.maxEntries {
				break
			}
			// Expired first is not worth a second pass here: entries
			// are two words, the bound is generous, and eviction only
			// fires under sustained unique-IP churn (a scan, not mail).
			_ = e
			delete(c.cache, k)
		}
	}
	c.cache[ip] = cacheEntry{yes: yes, expires: now + int64(c.ttl)}
}

func (c *boolCache) entries() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cache)
}

// DNSWLStage bypasses greylisting for clients listed on a DNS
// whitelist — the inverse of a DNSBL, same wire protocol (dnswl.org in
// deployments; the lab publishes its own zone). Answers are cached per
// client IP for the configured TTL.
type DNSWLStage struct {
	resolver *dnsresolver.Resolver
	origin   string
	cache    *boolCache
}

// DNSWL builds the stage querying origin (e.g. "list.dnswl.example")
// through res.
func DNSWL(res *dnsresolver.Resolver, origin string, cfg CacheConfig) *DNSWLStage {
	cfg = cfg.withDefaults()
	return &DNSWLStage{
		resolver: res,
		origin:   origin,
		cache:    newBoolCache(cfg.Clock, cfg.TTL, cfg.MaxEntries),
	}
}

// Name implements greylist.Stage.
func (s *DNSWLStage) Name() string { return "dnswl" }

// Eval implements greylist.Stage.
func (s *DNSWLStage) Eval(t greylist.Triplet) (greylist.StageOutcome, error) {
	listed, ok := s.cache.get(t.ClientIP)
	if !ok {
		var err error
		listed, err = dnsbl.Lookup(s.resolver, s.origin, t.ClientIP)
		if err != nil {
			return greylist.StageOutcome{}, err
		}
		s.cache.put(t.ClientIP, listed)
	}
	if listed {
		return greylist.StageOutcome{Action: greylist.StageBypass, Reason: greylist.ReasonDNSWL}, nil
	}
	return greylist.StageOutcome{}, nil
}

// Register exports the stage's cache counters.
func (s *DNSWLStage) Register(reg *metrics.Registry) {
	registerCache(reg, "dnswl", s.cache)
}

// RDNSStage bypasses greylisting for clients whose reverse DNS looks
// like a dedicated mail server (grayland's heuristic): a PTR name
// containing a mail-server token and no dynamic-pool token. Bots run
// on consumer machines whose PTR names — when they exist at all — look
// like "1-2-3-4.dyn.isp.example"; a box someone bothered to name
// "smtp1.provider.example" is probably a real MTA with a retry queue,
// so the triplet delay buys nothing.
type RDNSStage struct {
	resolver *dnsresolver.Resolver
	cache    *boolCache
}

// RDNS builds the stage resolving PTR records through res.
func RDNS(res *dnsresolver.Resolver, cfg CacheConfig) *RDNSStage {
	cfg = cfg.withDefaults()
	return &RDNSStage{
		resolver: res,
		cache:    newBoolCache(cfg.Clock, cfg.TTL, cfg.MaxEntries),
	}
}

// Name implements greylist.Stage.
func (s *RDNSStage) Name() string { return "rdns" }

// Eval implements greylist.Stage.
func (s *RDNSStage) Eval(t greylist.Triplet) (greylist.StageOutcome, error) {
	mailish, ok := s.cache.get(t.ClientIP)
	if !ok {
		var err error
		mailish, err = s.lookup(t.ClientIP)
		if err != nil {
			return greylist.StageOutcome{}, err
		}
		s.cache.put(t.ClientIP, mailish)
	}
	if mailish {
		return greylist.StageOutcome{Action: greylist.StageBypass, Reason: greylist.ReasonRDNS}, nil
	}
	return greylist.StageOutcome{}, nil
}

func (s *RDNSStage) lookup(ip string) (bool, error) {
	var buf [80]byte
	name, err := dnsbl.AppendReverseIPv4(buf[:0], ip)
	if err != nil {
		return false, err
	}
	name = append(name, ".in-addr.arpa"...)
	msg, err := s.resolver.Query(string(name), dnsmsg.TypePTR)
	if err != nil {
		if errors.Is(err, dnsresolver.ErrNXDomain) {
			return false, nil // no PTR at all: not a named mail server
		}
		return false, err
	}
	for _, rr := range msg.Answers {
		if ptr, ok := rr.Data.(dnsmsg.PTR); ok && LooksLikeMailServer(ptr.Target) {
			return true, nil
		}
	}
	return false, nil
}

// Register exports the stage's cache counters.
func (s *RDNSStage) Register(reg *metrics.Registry) {
	registerCache(reg, "rdns", s.cache)
}

// mailTokens mark hostnames operators give to real mail servers;
// poolTokens mark the consumer-pool naming schemes bots live in. A
// pool token vetoes: "mail" inside "1-2-3-4.dialpool.example" must not
// whitelist a dial-up.
var (
	mailTokens = []string{"mail", "smtp", "mx", "relay", "mta", "out", "postfix", "exim"}
	poolTokens = []string{"dyn", "dial", "dsl", "pool", "cable", "dhcp", "adsl", "broadband", "ppp", "client", "cust"}
)

// LooksLikeMailServer applies the rDNS heuristic to a PTR target name.
// Substring matching is deliberate — the deployed filters use the same
// loose patterns, and the lab experiment measures exactly how loose
// they are (its SPFProbe cousin buys itself a "smtp" PTR name).
func LooksLikeMailServer(host string) bool {
	h := strings.ToLower(host)
	for _, tok := range poolTokens {
		if strings.Contains(h, tok) {
			return false
		}
	}
	for _, tok := range mailTokens {
		if strings.Contains(h, tok) {
			return true
		}
	}
	return false
}

// CacheConfig tunes a stage's per-IP answer cache; the zero value gets
// defaults.
type CacheConfig struct {
	// TTL is the answer lifetime (default 1h — DNSWL listings and PTR
	// names change on human timescales).
	TTL time.Duration
	// MaxEntries bounds the cache (default 65536).
	MaxEntries int
	// Clock drives expiry; nil means real time.
	Clock simtime.Clock
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.TTL <= 0 {
		c.TTL = time.Hour
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 65536
	}
	if c.Clock == nil {
		c.Clock = simtime.Real{}
	}
	return c
}

func registerCache(reg *metrics.Registry, stage string, c *boolCache) {
	reg.CounterFunc("bypass_cache_hits_total",
		"Bypass-stage answers served from the per-IP cache.",
		c.hits.Load, "stage", stage)
	reg.CounterFunc("bypass_cache_misses_total",
		"Bypass-stage answers resolved through DNS.",
		c.misses.Load, "stage", stage)
	reg.GaugeFunc("bypass_cache_entries",
		"Bypass-stage cache entries.",
		func() float64 { return float64(c.entries()) }, "stage", stage)
}
