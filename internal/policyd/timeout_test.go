package policyd

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestIdleTimeoutDropsStalledConn is the regression test for the missing
// connection deadlines: a peer that connects and then goes silent used to
// pin its serveConn goroutine forever. With the idle deadline armed, the
// server must drop the connection on its own.
func TestIdleTimeoutDropsStalledConn(t *testing.T) {
	s, _ := newPolicyServer(300 * time.Second)
	s.IdleTimeout = 50 * time.Millisecond
	reg := metrics.NewRegistry()
	s.Register(reg)

	client, server := net.Pipe() // supports deadlines; the client never writes
	defer client.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.serveConn(server)
	}()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveConn still blocked on a stalled peer after 5s")
	}

	// The drop is visible to the peer (read returns an error, so Postfix
	// would reconnect) and counted.
	client.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after idle timeout")
	}
	if got := expositionContains(t, reg, "policyd_conn_timeouts_total 1\n"); !got {
		t.Fatal("timeout not counted in policyd_conn_timeouts_total")
	}
}

// TestIdleTimeoutStallMidRequest covers the nastier stall: the peer sends
// half a request (no terminating blank line) and wedges.
func TestIdleTimeoutStallMidRequest(t *testing.T) {
	s, _ := newPolicyServer(300 * time.Second)
	s.IdleTimeout = 50 * time.Millisecond

	client, server := net.Pipe()
	defer client.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.serveConn(server)
	}()
	if _, err := client.Write([]byte("protocol_state=RCPT\nclient_address=1.2.3.4\n")); err != nil {
		t.Fatal(err)
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveConn still blocked on a half-written request after 5s")
	}
}

// TestIdleTimeoutDisabled pins the opt-out: a negative IdleTimeout arms
// no deadline, and a slow-but-alive peer is served normally.
func TestIdleTimeoutDisabled(t *testing.T) {
	s, _ := newPolicyServer(300 * time.Second)
	s.IdleTimeout = -1

	client, server := net.Pipe()
	defer client.Close()
	go s.serveConn(server)

	time.Sleep(20 * time.Millisecond) // longer than any accidental default-0 deadline
	client.SetDeadline(time.Now().Add(5 * time.Second))
	req := "protocol_state=RCPT\nclient_address=203.0.113.4\nsender=a@b.example\nrecipient=u@foo.net\n\n"
	if _, err := client.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(client)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "action=DEFER_IF_PERMIT") {
		t.Fatalf("answer = %q", line)
	}
}

func expositionContains(t *testing.T, reg *metrics.Registry, want string) bool {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return strings.Contains(sb.String(), want)
}

// TestPolicydMetrics pins the exported policyd metric names and the
// action counters' agreement with the decisions actually returned.
func TestPolicydMetrics(t *testing.T) {
	s, clock := newPolicyServer(300 * time.Second)
	s.PrependHeader = true
	reg := metrics.NewRegistry()
	s.Register(reg)

	req := rcptRequest("203.0.113.9", "a@b.example", "u@foo.net")
	s.DecideBatch([]Request{req, {"protocol_state": "DATA"}}, nil) // defer + dunno
	clock.Advance(301 * time.Second)
	s.Decide(req) // prepend

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`policyd_responses_total{action="defer"} 1` + "\n",
		`policyd_responses_total{action="dunno"} 1` + "\n",
		`policyd_responses_total{action="prepend"} 1` + "\n",
		"policyd_batch_size_count 1\n",
		"policyd_decide_seconds_count 1\n",
		"# TYPE policyd_requests_total counter",
		"# TYPE policyd_open_connections gauge",
		"# TYPE policyd_connections_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
