package policyd

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/greylist"
	"repro/internal/simtime"
)

func TestBufferedRequest(t *testing.T) {
	cases := []struct {
		raw  string
		want bool
	}{
		{"", false},
		{"\n", false},                     // blank alone is not a request
		{"\n\n\n", false},                 // ParseRequest skips these and would block
		{"client_address=1.2.3.4\n", false}, // no terminating blank yet
		{"client_address=1.2.3.4\n\n", true},
		{"a=1\r\nb=2\r\n\r\n", true}, // CRLF form
		{"\nclient_address=1.2.3.4\n\n", true}, // stray blank, then a full request
	}
	for _, c := range cases {
		br := bufio.NewReader(strings.NewReader(c.raw))
		br.Peek(1) // fill the buffer so Buffered() sees the payload
		if got := bufferedRequest(br); got != c.want {
			t.Errorf("bufferedRequest(%q) = %v, want %v", c.raw, got, c.want)
		}
	}
}

// TestDecideBatchMatchesDecide runs a mixed batch — greylistable
// requests, a non-RCPT state, an incomplete request — through DecideBatch
// and asserts positional equivalence with serial Decide on an identical
// engine (fresh engines, same clock, so state evolution matches).
func TestDecideBatchMatchesDecide(t *testing.T) {
	mkServer := func() *Server {
		clock := simtime.NewSim(simtime.Epoch)
		g := greylist.NewSharded(4, greylist.Policy{Threshold: 300 * time.Second, RetryWindow: 48 * time.Hour}, clock)
		s := New(g)
		s.PrependHeader = true
		return s
	}
	reqs := []Request{
		rcptRequest("203.0.113.9", "a@b.example", "u@foo.net"),
		{"protocol_state": "DATA", "client_address": "203.0.113.9", "recipient": "u@foo.net"},
		rcptRequest("203.0.113.10", "b@b.example", "v@foo.net"),
		{"protocol_state": "RCPT"}, // incomplete
		rcptRequest("203.0.113.9", "a@b.example", "u@foo.net"), // repeat: still deferred
	}

	serial := mkServer()
	want := make([]Response, len(reqs))
	for i, req := range reqs {
		want[i] = serial.Decide(req)
	}

	batch := mkServer()
	got := batch.DecideBatch(reqs, nil)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("[%d] batch = %q, serial = %q", i, got[i].Action, want[i].Action)
		}
	}

	// The out slice is reused on the next call.
	got2 := batch.DecideBatch(reqs[:2], got)
	if &got2[0] != &got[0] {
		t.Error("DecideBatch did not reuse the out slice")
	}
}

// TestPolicyPipelinedRequests writes several complete requests in one
// chunk, the way a busy Postfix smtpd does, and expects one in-order
// response per request.
func TestPolicyPipelinedRequests(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := greylist.New(greylist.Policy{Threshold: 300 * time.Second, RetryWindow: 48 * time.Hour}, clock)
	srv := New(g)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	req := func(rcpt string) string {
		return "request=smtpd_access_policy\nprotocol_state=RCPT\n" +
			"client_address=198.51.100.80\nsender=mta@benign.example\nrecipient=" + rcpt + "\n\n"
	}
	if _, err := conn.Write([]byte(req("u1@foo.net") + req("u2@foo.net") + req("u1@foo.net"))); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if !strings.HasPrefix(line, "action=DEFER_IF_PERMIT") {
			t.Fatalf("response %d = %q", i, line)
		}
		if blank, err := br.ReadString('\n'); err != nil || strings.TrimSpace(blank) != "" {
			t.Fatalf("response %d missing blank: %q, %v", i, blank, err)
		}
	}
	if srv.Requests() != 3 {
		t.Fatalf("requests = %d", srv.Requests())
	}
}
