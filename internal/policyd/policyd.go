// Package policyd implements the Postfix SMTP access policy delegation
// protocol — the interface through which the real Postgrey plugs into
// the real Postfix (and the deployment shape of the server the paper
// instrumented: "Postfix (and Postgrey for the greylisting tests)").
//
// Protocol (postfix.org/SMTPD_POLICY_README.html): the MTA sends one
// request as "name=value" lines terminated by an empty line; the policy
// server answers "action=<decision>" plus an empty line. Connections are
// reused for many requests. The attributes this server reads are
// protocol_state, client_address, sender and recipient; the decisions it
// emits are:
//
//	DUNNO                     — no objection (pass to the next rule)
//	DEFER_IF_PERMIT <reason>  — the greylisting deferral
//	PREPEND <header>          — on first-pass deliveries, a tracing
//	                            header like Postgrey's X-Greylist
//
// With this package, cmd/greylistd can front an actual Postfix:
//
//	smtpd_recipient_restrictions = check_policy_service inet:127.0.0.1:10023
package policyd

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/greylist"
	"repro/internal/trace"
)

// Request is one policy request's attributes (names lower-cased).
type Request map[string]string

// Attribute accessors for the fields greylisting needs.
func (r Request) ClientAddress() string { return r["client_address"] }

// Sender returns the envelope sender attribute.
func (r Request) Sender() string { return r["sender"] }

// Recipient returns the envelope recipient attribute.
func (r Request) Recipient() string { return r["recipient"] }

// ProtocolState returns the SMTP state (RCPT, DATA, ...).
func (r Request) ProtocolState() string { return strings.ToUpper(r["protocol_state"]) }

// ParseRequest reads one request (up to the blank line). io.EOF on a
// clean end-of-stream before any attribute.
func ParseRequest(br *bufio.Reader) (Request, error) {
	req := make(Request)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if errors.Is(err, io.EOF) && len(req) == 0 && line == "" {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("policyd: read: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if len(req) == 0 {
				continue // tolerate stray blank lines between requests
			}
			return req, nil
		}
		name, value, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("policyd: malformed attribute line %q", line)
		}
		req[strings.ToLower(strings.TrimSpace(name))] = strings.TrimSpace(value)
	}
}

// Response is the action the policy server returns.
type Response struct {
	Action string
}

// Write emits the response in wire form.
func (r Response) Write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "action=%s\n\n", r.Action)
	return err
}

// DefaultIdleTimeout bounds how long a policy connection may sit idle
// between requests (and how long one response write may stall) before
// the server drops it. Postfix reconnects transparently when a policy
// connection goes away, and its own client-side limits
// (smtpd_policy_service_timeout and friends) sit well under this, so
// five minutes only ever reaps peers that are truly gone.
const DefaultIdleTimeout = 5 * time.Minute

// Server answers policy requests with greylisting decisions.
type Server struct {
	checker greylist.Checker
	// PrependHeader, when true, answers first-accepted retries with a
	// PREPEND action adding a Postgrey-style tracing header instead of
	// plain DUNNO.
	PrependHeader bool
	// IdleTimeout overrides DefaultIdleTimeout; negative disables
	// deadlines entirely. Set before Serve.
	IdleTimeout time.Duration

	inst   atomic.Pointer[instruments]
	tracer atomic.Pointer[trace.Tracer]

	mu        sync.Mutex
	wg        sync.WaitGroup
	closed    bool
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	requests  uint64
}

// New returns a policy server over the given greylisting engine
// (either a *greylist.Greylister or a *greylist.Sharded).
func New(checker greylist.Checker) *Server {
	return &Server{checker: checker, conns: make(map[net.Conn]struct{})}
}

// Requests reports how many policy requests have been served.
func (s *Server) Requests() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// Serve accepts policy connections on l until it is closed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("policyd: server closed")
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("policyd: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops listeners and drains connection goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ls := s.listeners
	s.listeners = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if inst := s.inst.Load(); inst != nil {
		inst.connections.Inc()
	}
	timeout := s.IdleTimeout
	if timeout == 0 {
		timeout = DefaultIdleTimeout
	}
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var (
		reqs  []Request
		resps []Response
	)
	for {
		// Arm the idle deadline before blocking for the next request: a
		// peer that wedges mid-request (or vanishes without FIN) must not
		// pin this goroutine and its connection slot forever.
		if timeout > 0 {
			conn.SetReadDeadline(time.Now().Add(timeout))
		}
		req, err := ParseRequest(br)
		if err != nil {
			if isTimeout(err) {
				if inst := s.inst.Load(); inst != nil {
					inst.timeouts.Inc()
				}
			}
			return // EOF, timeout or garbage: drop the connection, like Postgrey
		}
		// An MTA under load writes requests back-to-back without waiting
		// for each answer; drain every complete request already buffered
		// and decide them as one batch, amortizing the engine's locks.
		reqs = append(reqs[:0], req)
		for len(reqs) < maxRequestBatch && bufferedRequest(br) {
			next, err := ParseRequest(br)
			if err != nil {
				return
			}
			reqs = append(reqs, next)
		}
		s.mu.Lock()
		s.requests += uint64(len(reqs))
		s.mu.Unlock()
		resps = s.DecideBatch(reqs, resps)
		// A write deadline too: Response.Write buffers, but Flush pushes
		// bytes to a peer whose receive window may be closed.
		if timeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		for _, resp := range resps {
			if err := resp.Write(bw); err != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			if isTimeout(err) {
				if inst := s.inst.Load(); inst != nil {
					inst.timeouts.Inc()
				}
			}
			return
		}
	}
}

// isTimeout reports whether err (possibly wrapped) is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// maxRequestBatch bounds how many buffered policy requests are decided
// per batch, so one slow engine pass can't starve the reply stream.
const maxRequestBatch = 64

// bufferedRequest reports whether br already holds at least one complete
// request — one or more attribute lines followed by a blank line — so
// ParseRequest is guaranteed not to block. Leading blank lines (which
// ParseRequest skips) do not count as completion.
func bufferedRequest(br *bufio.Reader) bool {
	n := br.Buffered()
	if n == 0 {
		return false
	}
	buf, err := br.Peek(n)
	if err != nil {
		return false
	}
	sawAttr := false
	start := 0
	for i, b := range buf {
		if b != '\n' {
			continue
		}
		line := buf[start:i]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			if sawAttr {
				return true
			}
		} else {
			sawAttr = true
		}
		start = i + 1
	}
	return false
}

// Decide maps one policy request to an action. Exposed for testing and
// for embedding in other servers.
func (s *Server) Decide(req Request) Response {
	return s.decide(req, nil)
}

// decide is Decide with an optional trace handle: when tr is non-nil
// and the engine supports traced checks, the greylist verdict lands in
// the trace.
func (s *Server) decide(req Request, tr *trace.Trace) Response {
	// Postgrey only acts at RCPT time; everything else passes.
	if st := req.ProtocolState(); st != "" && st != "RCPT" {
		return s.dunno()
	}
	if req.ClientAddress() == "" || req.Recipient() == "" {
		return s.dunno()
	}
	t := triplet(req)
	var v greylist.Verdict
	if tc, ok := s.checker.(greylist.TracedChecker); ok && tr != nil {
		v = tc.CheckTraced(t, tr)
	} else {
		v = s.checker.Check(t)
	}
	return s.actionFor(v)
}

// SetTracer installs (or, with nil, removes) a transaction tracer.
// While set, every policy request becomes one finished trace — the
// parsed attributes, the greylist verdict and the wire action — and
// batch decisions fall back to per-request checks so each request's
// verdict is attributable. Safe to call concurrently with Serve.
func (s *Server) SetTracer(t *trace.Tracer) {
	if t == nil {
		s.tracer.Store(nil)
		return
	}
	s.tracer.Store(t)
}

// decideOneTraced runs one request under a fresh trace and finishes it
// with the wire action's outcome.
func (s *Server) decideOneTraced(t *trace.Tracer, req Request) Response {
	tr := t.StartSession(trace.Tags{Defense: "policyd"}, req.ClientAddress(), nil)
	resp := s.decide(req, tr)
	action, _, _ := strings.Cut(resp.Action, " ")
	tr.Policy(action, req.Recipient())
	tr.Finish(policyOutcome(action))
	return resp
}

// policyOutcome maps a wire action to the trace outcome label.
func policyOutcome(action string) string {
	switch action {
	case "DEFER_IF_PERMIT":
		return "deferred"
	default: // DUNNO, PREPEND
		return "passed"
	}
}

// DecideBatch maps a run of policy requests to actions, answering
// positionally. When the engine supports batch checking the greylistable
// requests share one CheckBatch call; semantics match calling Decide on
// each request in order. The result reuses out when it has capacity.
func (s *Server) DecideBatch(reqs []Request, out []Response) []Response {
	if inst := s.inst.Load(); inst != nil {
		inst.batchSize.Observe(float64(len(reqs)))
		start := time.Now()
		defer func() { inst.decideSeconds.ObserveDuration(time.Since(start)) }()
	}
	if cap(out) < len(reqs) {
		out = make([]Response, len(reqs))
	} else {
		out = out[:len(reqs)]
	}
	if t := s.tracer.Load(); t != nil {
		// Tracing mode: one trace per request, so each verdict is
		// individually attributable. Forgoes the amortized batch check.
		for i, req := range reqs {
			out[i] = s.decideOneTraced(t, req)
		}
		return out
	}
	bc, ok := s.checker.(greylist.BatchChecker)
	if !ok || len(reqs) == 1 {
		for i, req := range reqs {
			out[i] = s.Decide(req)
		}
		return out
	}
	var (
		ts  []greylist.Triplet
		pos []int
	)
	for i, req := range reqs {
		if st := req.ProtocolState(); st != "" && st != "RCPT" {
			out[i] = s.dunno()
			continue
		}
		if req.ClientAddress() == "" || req.Recipient() == "" {
			out[i] = s.dunno()
			continue
		}
		ts = append(ts, triplet(req))
		pos = append(pos, i)
	}
	if len(ts) == 0 {
		return out
	}
	for j, v := range bc.CheckBatch(ts, nil) {
		out[pos[j]] = s.actionFor(v)
	}
	return out
}

func triplet(req Request) greylist.Triplet {
	return greylist.Triplet{
		ClientIP:  req.ClientAddress(),
		Sender:    req.Sender(),
		Recipient: req.Recipient(),
	}
}

// dunno returns the pass-through action, counting it when instrumented.
func (s *Server) dunno() Response {
	if inst := s.inst.Load(); inst != nil {
		inst.actDunno.Inc()
	}
	return Response{Action: "DUNNO"}
}

// actionFor maps a greylisting verdict to the wire action.
func (s *Server) actionFor(v greylist.Verdict) Response {
	switch v.Decision {
	case greylist.Pass:
		if s.PrependHeader && v.Reason == greylist.ReasonRetryAccepted {
			if inst := s.inst.Load(); inst != nil {
				inst.actPrepend.Inc()
			}
			return Response{Action: fmt.Sprintf(
				"PREPEND X-Greylist: delayed %d seconds by greynolist policy server",
				int(v.Waited.Seconds()))}
		}
		return s.dunno()
	default:
		if inst := s.inst.Load(); inst != nil {
			inst.actDefer.Inc()
		}
		return Response{Action: fmt.Sprintf(
			"DEFER_IF_PERMIT Greylisted, please try again in %d seconds",
			int(v.WaitRemaining.Seconds()))}
	}
}
