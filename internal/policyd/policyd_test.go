package policyd

import (
	"bufio"

	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/greylist"
	"repro/internal/simtime"
)

func TestParseRequest(t *testing.T) {
	raw := "request=smtpd_access_policy\n" +
		"protocol_state=RCPT\n" +
		"client_address=203.0.113.9\n" +
		"sender=bot@spam.example\n" +
		"recipient=user@foo.net\n" +
		"\n"
	req, err := ParseRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if req.ClientAddress() != "203.0.113.9" || req.Sender() != "bot@spam.example" ||
		req.Recipient() != "user@foo.net" || req.ProtocolState() != "RCPT" {
		t.Fatalf("request = %v", req)
	}
}

func TestParseRequestEOFAndGarbage(t *testing.T) {
	if _, err := ParseRequest(bufio.NewReader(strings.NewReader(""))); err != io.EOF {
		t.Fatalf("empty stream err = %v, want EOF", err)
	}
	if _, err := ParseRequest(bufio.NewReader(strings.NewReader("no equals sign\n\n"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Stray blank lines between requests are tolerated.
	req, err := ParseRequest(bufio.NewReader(strings.NewReader("\n\nclient_address=1.2.3.4\n\n")))
	if err != nil || req.ClientAddress() != "1.2.3.4" {
		t.Fatalf("req = %v, %v", req, err)
	}
}

func newPolicyServer(threshold time.Duration) (*Server, *simtime.Sim) {
	clock := simtime.NewSim(simtime.Epoch)
	g := greylist.New(greylist.Policy{Threshold: threshold, RetryWindow: 48 * time.Hour}, clock)
	return New(g), clock
}

func rcptRequest(ip, sender, rcpt string) Request {
	return Request{
		"request":        "smtpd_access_policy",
		"protocol_state": "RCPT",
		"client_address": ip,
		"sender":         sender,
		"recipient":      rcpt,
	}
}

func TestDecideGreylistFlow(t *testing.T) {
	s, clock := newPolicyServer(300 * time.Second)
	req := rcptRequest("203.0.113.9", "a@b.example", "u@foo.net")

	if resp := s.Decide(req); !strings.HasPrefix(resp.Action, "DEFER_IF_PERMIT") {
		t.Fatalf("first = %q", resp.Action)
	}
	clock.Advance(100 * time.Second)
	resp := s.Decide(req)
	if !strings.Contains(resp.Action, "200 seconds") {
		t.Fatalf("early retry = %q, want remaining wait of 200s", resp.Action)
	}
	clock.Advance(201 * time.Second)
	if resp := s.Decide(req); resp.Action != "DUNNO" {
		t.Fatalf("late retry = %q, want DUNNO", resp.Action)
	}
}

func TestDecidePrependHeader(t *testing.T) {
	s, clock := newPolicyServer(300 * time.Second)
	s.PrependHeader = true
	req := rcptRequest("203.0.113.9", "a@b.example", "u@foo.net")
	s.Decide(req)
	clock.Advance(400 * time.Second)
	resp := s.Decide(req)
	if !strings.HasPrefix(resp.Action, "PREPEND X-Greylist: delayed 400 seconds") {
		t.Fatalf("action = %q", resp.Action)
	}
	// Subsequent known-triplet passes are plain DUNNO.
	if resp := s.Decide(req); resp.Action != "DUNNO" {
		t.Fatalf("known = %q", resp.Action)
	}
}

func TestDecideNonRcptStatesPass(t *testing.T) {
	s, _ := newPolicyServer(300 * time.Second)
	req := rcptRequest("203.0.113.9", "a@b.example", "u@foo.net")
	req["protocol_state"] = "DATA"
	if resp := s.Decide(req); resp.Action != "DUNNO" {
		t.Fatalf("DATA state = %q", resp.Action)
	}
	// And incomplete requests pass rather than block mail.
	if resp := s.Decide(Request{"protocol_state": "RCPT"}); resp.Action != "DUNNO" {
		t.Fatalf("incomplete = %q", resp.Action)
	}
}

// TestPolicyProtocolOverTCP exercises the wire protocol end to end the
// way Postfix does: one connection, many requests.
func TestPolicyProtocolOverTCP(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := greylist.New(greylist.Policy{Threshold: 300 * time.Second, RetryWindow: 48 * time.Hour}, clock)
	srv := New(g)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)

	send := func() string {
		t.Helper()
		req := "request=smtpd_access_policy\nprotocol_state=RCPT\n" +
			"client_address=198.51.100.77\nsender=mta@benign.example\nrecipient=user@foo.net\n\n"
		if _, err := conn.Write([]byte(req)); err != nil {
			t.Fatal(err)
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if blank, err := br.ReadString('\n'); err != nil || strings.TrimSpace(blank) != "" {
			t.Fatalf("missing terminating blank line: %q, %v", blank, err)
		}
		return strings.TrimSpace(line)
	}

	if got := send(); !strings.HasPrefix(got, "action=DEFER_IF_PERMIT") {
		t.Fatalf("first = %q", got)
	}
	clock.Advance(301 * time.Second)
	if got := send(); got != "action=DUNNO" {
		t.Fatalf("retry = %q", got)
	}
	if srv.Requests() != 2 {
		t.Fatalf("requests = %d", srv.Requests())
	}
}

func TestPolicyServerCloseIdempotent(t *testing.T) {
	s, _ := newPolicyServer(time.Second)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := s.Serve(l); err == nil {
		t.Fatal("Serve succeeded after Close")
	}
}

func TestPolicyServerWithShardedEngine(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := greylist.NewSharded(4, greylist.Policy{Threshold: 300 * time.Second, RetryWindow: time.Hour}, clock)
	s := New(g)
	req := rcptRequest("203.0.113.1", "a@b.example", "u@foo.net")
	if resp := s.Decide(req); !strings.HasPrefix(resp.Action, "DEFER_IF_PERMIT") {
		t.Fatalf("first = %q", resp.Action)
	}
	clock.Advance(301 * time.Second)
	if resp := s.Decide(req); resp.Action != "DUNNO" {
		t.Fatalf("retry = %q", resp.Action)
	}
}

func TestResponseWrite(t *testing.T) {
	var sb strings.Builder
	if err := (Response{Action: "DUNNO"}).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "action=DUNNO\n\n" {
		t.Fatalf("wire = %q", sb.String())
	}
}
