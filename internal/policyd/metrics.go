package policyd

import "repro/internal/metrics"

// instruments holds the hot-path metric handles. The pointer lives in
// Server.inst and is nil until Register is called, so an uninstrumented
// server pays one atomic load per touch point and nothing else.
type instruments struct {
	connections   *metrics.Counter
	timeouts      *metrics.Counter
	actDunno      *metrics.Counter
	actDefer      *metrics.Counter
	actPrepend    *metrics.Counter
	batchSize     *metrics.Histogram
	decideSeconds *metrics.Histogram
}

// Register exports the policy server's counters into reg:
//
//	policyd_requests_total          requests served (mirror of Requests())
//	policyd_connections_total       connections accepted
//	policyd_conn_timeouts_total     connections dropped by the idle deadline
//	policyd_responses_total{action} responses by action (dunno|defer|prepend)
//	policyd_open_connections        currently-open connections
//	policyd_batch_size              requests decided per batch
//	policyd_decide_seconds          decision latency per batch
func (s *Server) Register(reg *metrics.Registry) {
	reg.CounterFunc("policyd_requests_total",
		"Policy requests served.",
		func() uint64 { return s.Requests() })
	reg.GaugeFunc("policyd_open_connections",
		"Currently open policy connections.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})
	inst := &instruments{
		connections: reg.Counter("policyd_connections_total",
			"Policy connections accepted."),
		timeouts: reg.Counter("policyd_conn_timeouts_total",
			"Policy connections dropped by the idle deadline."),
		actDunno: reg.Counter("policyd_responses_total",
			"Policy responses by action.", "action", "dunno"),
		actDefer: reg.Counter("policyd_responses_total",
			"Policy responses by action.", "action", "defer"),
		actPrepend: reg.Counter("policyd_responses_total",
			"Policy responses by action.", "action", "prepend"),
		batchSize: reg.Histogram("policyd_batch_size",
			"Policy requests decided per batch.", metrics.DefSizeBuckets),
		decideSeconds: reg.Histogram("policyd_decide_seconds",
			"Decision latency per batch of policy requests.",
			metrics.DefLatencyBuckets),
	}
	s.inst.Store(inst)
}
