package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := c.Max(); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := c.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	if got := c.Median(); got != 3 {
		t.Errorf("Median = %v", got)
	}
}

func TestCDFP(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := map[float64]float64{
		0.5: 0, 1: 0.25, 1.5: 0.25, 2: 0.5, 4: 1, 99: 1,
	}
	for x, want := range cases {
		if got := c.P(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	cases := map[float64]float64{0: 10, 0.1: 10, 0.5: 50, 0.9: 90, 1: 100}
	for q, want := range cases {
		if got := c.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.P(1) != 0 {
		t.Error("P on empty != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Min()) || !math.IsNaN(c.Mean()) {
		t.Error("empty CDF statistics should be NaN")
	}
	if c.Points(5) != nil {
		t.Error("Points on empty != nil")
	}
}

func TestCDFDurations(t *testing.T) {
	c := NewDurationCDF([]time.Duration{time.Minute, 2 * time.Minute})
	if c.Min() != 60 || c.Max() != 120 {
		t.Fatalf("duration CDF = [%v, %v]", c.Min(), c.Max())
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 10 {
		t.Fatalf("endpoints = %v, %v", pts[0], pts[10])
	}
	if pts[10].P != 1 {
		t.Fatalf("P at max = %v", pts[10].P)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Fatalf("CDF not monotone at %d: %v", i, pts)
		}
	}
	if got := c.Points(1); len(got) != 1 || got[0].P != 1 {
		t.Fatalf("Points(1) = %v", got)
	}
}

// Property: P is monotone and bounded in [0,1] for arbitrary data.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(values []float64, probes []float64) bool {
		clean := values[:0]
		for _, v := range values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		c := NewCDF(clean)
		sort.Float64s(probes)
		prev := -1.0
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			p := c.P(x)
			if p < 0 || p > 1 || p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, x := range []float64{5, 15, 15, 95, -1, 100, 150} {
		h.Observe(x)
	}
	counts := h.Counts()
	if counts[0] != 1 || counts[1] != 2 || counts[9] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("out of range = %d, %d", under, over)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	lo, hi := h.BucketBounds(1)
	if lo != 10 || hi != 20 {
		t.Fatalf("bucket bounds = [%v, %v)", lo, hi)
	}
}

func TestHistogramPanicsOnBadSpec(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(10, 0, 5) },
		func() { NewHistogram(0, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram spec did not panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramPeaks(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	// Peaks at buckets 2 (count 5) and 7 (count 9).
	for i := 0; i < 5; i++ {
		h.Observe(25)
	}
	for i := 0; i < 9; i++ {
		h.Observe(75)
	}
	h.Observe(45) // low bump
	peaks := h.Peaks(2)
	if len(peaks) != 2 || peaks[0] != 7 || peaks[1] != 2 {
		t.Fatalf("peaks = %v, want [7 2]", peaks)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("PROVIDER", "ATTEMPTS", "DELIVERED")
	tbl.AddRow("gmail.com", "9", "yes")
	tbl.AddRow("aol.com", "5") // short row padded
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "PROVIDER") || !strings.Contains(lines[2], "gmail.com") {
		t.Fatalf("table:\n%s", out)
	}
	// Columns aligned: header and row start of column 2 match.
	hIdx := strings.Index(lines[0], "ATTEMPTS")
	rIdx := strings.Index(lines[2], "9")
	if hIdx != rIdx {
		t.Fatalf("misaligned table:\n%s", out)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestRenderCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	out := RenderCDF(c, 40, 8, "s")
	if !strings.Contains(out, "*") || !strings.Contains(out, "10 s") {
		t.Fatalf("plot:\n%s", out)
	}
	if got := RenderCDF(CDF{}, 40, 8, "s"); !strings.Contains(got, "empty") {
		t.Fatalf("empty plot = %q", got)
	}
	// Degenerate single-value distribution must not divide by zero.
	if out := RenderCDF(NewCDF([]float64{5}), 20, 4, "s"); out == "" {
		t.Fatal("degenerate plot empty")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		6*time.Minute + 2*time.Second:    "6:02",
		29*time.Minute + 2*time.Second:   "29:02",
		434*time.Minute + 46*time.Second: "434:46",
		0:                                "0:00",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestMeanStddev(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("Stddev of constant = %v", got)
	}
	if got := Stddev([]float64{0, 10}); got != 5 {
		t.Errorf("Stddev = %v", got)
	}
	if !math.IsNaN(Stddev(nil)) {
		t.Error("Stddev(nil) not NaN")
	}
}

// Property: the empirical CDF and quantile function are consistent:
// P(Quantile(q)) >= q for all q, and Quantile(P(x)) <= x for in-range x.
func TestQuantileCDFConsistencyProperty(t *testing.T) {
	f := func(raw []float64, qRaw uint16) bool {
		var values []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				values = append(values, v)
			}
		}
		if len(values) == 0 {
			return true
		}
		c := NewCDF(values)
		q := float64(qRaw) / math.MaxUint16
		x := c.Quantile(q)
		if c.P(x) < q-1e-12 {
			return false
		}
		// And Quantile is monotone in q.
		return c.Quantile(q/2) <= x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram counts always sum to Total.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(samples []float64) bool {
		h := NewHistogram(0, 100, 7)
		for _, s := range samples {
			if math.IsNaN(s) {
				continue
			}
			h.Observe(s)
		}
		var sum uint64
		for _, c := range h.Counts() {
			sum += c
		}
		under, over := h.OutOfRange()
		return sum+under+over == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
