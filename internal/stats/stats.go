// Package stats provides the small statistical toolkit the experiments
// need: empirical CDFs (Figures 3 and 5 are delivery-delay CDFs),
// histograms (Figure 4 is a retransmission-delay histogram/timeline),
// percentiles, and ASCII rendering of tables and plots so every cmd/
// binary can print paper-style output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution over float64 samples.
// The zero value is an empty distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from values (copied, then sorted).
func NewCDF(values []float64) CDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// NewDurationCDF builds a CDF over durations, in seconds.
func NewDurationCDF(ds []time.Duration) CDF {
	vals := make([]float64, len(ds))
	for i, d := range ds {
		vals[i] = d.Seconds()
	}
	return NewCDF(vals)
}

// N returns the sample count.
func (c CDF) N() int { return len(c.sorted) }

// P returns the empirical P(X <= x), i.e. the fraction of samples at or
// below x. Empty distributions return 0.
func (c CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method. Empty distributions return NaN.
func (c CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.sorted[rank]
}

// Min returns the smallest sample (NaN when empty).
func (c CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample (NaN when empty).
func (c CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the arithmetic mean (NaN when empty).
func (c CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Median is Quantile(0.5).
func (c CDF) Median() float64 { return c.Quantile(0.5) }

// Point is one (x, P(X<=x)) pair of a CDF curve.
type Point struct {
	X float64
	P float64
}

// Points samples the curve at n evenly spaced x positions between Min and
// Max (inclusive), for export or plotting.
func (c CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n == 1 {
		return []Point{{X: c.Max(), P: 1}}
	}
	lo, hi := c.Min(), c.Max()
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, P: c.P(x)}
	}
	return pts
}

// Histogram counts samples into equal-width buckets over [min, max);
// samples outside the range go into underflow/overflow counters.
type Histogram struct {
	min, max  float64
	counts    []uint64
	underflow uint64
	overflow  uint64
	total     uint64
}

// NewHistogram builds a histogram with n buckets over [min, max). It
// panics on a malformed range or non-positive bucket count, which are
// programming errors.
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || !(min < max) {
		panic(fmt.Sprintf("stats: bad histogram spec [%v,%v) x%d", min, max, n))
	}
	return &Histogram{min: min, max: max, counts: make([]uint64, n)}
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.min:
		h.underflow++
	case x >= h.max:
		h.overflow++
	default:
		i := int(float64(len(h.counts)) * (x - h.min) / (h.max - h.min))
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Total returns the number of observed samples including out-of-range.
func (h *Histogram) Total() uint64 { return h.total }

// Counts returns a copy of the per-bucket counts.
func (h *Histogram) Counts() []uint64 { return append([]uint64(nil), h.counts...) }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.underflow, h.overflow }

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.max - h.min) / float64(len(h.counts))
	return h.min + w*float64(i), h.min + w*float64(i+1)
}

// Peaks returns the indices of local maxima whose count is at least
// minCount, in descending count order. Figure 4's analysis ("we can
// clearly identify a number of peaks") uses this.
func (h *Histogram) Peaks(minCount uint64) []int {
	var peaks []int
	for i, c := range h.counts {
		if c < minCount {
			continue
		}
		left := uint64(0)
		if i > 0 {
			left = h.counts[i-1]
		}
		right := uint64(0)
		if i < len(h.counts)-1 {
			right = h.counts[i+1]
		}
		if c >= left && c >= right && (c > left || c > right || (i == 0 && c > right) || (i == len(h.counts)-1 && c > left)) {
			peaks = append(peaks, i)
		}
	}
	sort.Slice(peaks, func(a, b int) bool { return h.counts[peaks[a]] > h.counts[peaks[b]] })
	return peaks
}

// Table is a simple aligned ASCII table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// RenderCDF draws an ASCII CDF plot of the given width and height with
// axis labels in the given unit.
func RenderCDF(c CDF, width, height int, unit string) string {
	if c.N() == 0 {
		return "(empty distribution)\n"
	}
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	lo, hi := c.Min(), c.Max()
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for col := 0; col < width; col++ {
		x := lo + (hi-lo)*float64(col)/float64(width-1)
		p := c.P(x)
		row := int(math.Round(p * float64(height-1)))
		grid[height-1-row][col] = '*'
	}
	var sb strings.Builder
	for i, line := range grid {
		p := 1.0 - float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%5.2f |%s\n", p, string(line))
	}
	sb.WriteString("      +" + strings.Repeat("-", width) + "\n")
	left := fmt.Sprintf("%.0f", lo)
	right := fmt.Sprintf("%.0f %s", hi, unit)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	sb.WriteString("       " + left + strings.Repeat(" ", pad) + right + "\n")
	return sb.String()
}

// FormatDuration renders a duration as the paper's tables do: "min:sec"
// (Table III uses e.g. "6:02" for 6 minutes 2 seconds).
func FormatDuration(d time.Duration) string {
	total := int(d.Round(time.Second).Seconds())
	return fmt.Sprintf("%d:%02d", total/60, total%60)
}

// Mean computes the arithmetic mean of values (NaN when empty).
func Mean(values []float64) float64 { return NewCDF(values).Mean() }

// Stddev computes the population standard deviation (NaN when empty).
func Stddev(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := Mean(values)
	sum := 0.0
	for _, v := range values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(values)))
}
