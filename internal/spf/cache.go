package spf

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/smtpproto"
)

// CachedChecker memoizes SPF evaluations. A bare Checker re-resolves
// the whole record graph (TXT, plus any a/mx/include lookups) on every
// call, which is fine for a one-shot verifier but not for a stage on
// the per-RCPT greylisting path: a relaying provider delivering a
// campaign asks the same (domain, outbound subnet) question thousands
// of times per TTL.
//
// The cache key is (sender domain, client address masked to /24 — /64
// for IPv6): SPF answers rarely differ inside a subnet (records
// authorize blocks, not hosts), and masking keeps one busy provider
// rotating through a /24 to a single entry. Verdicts live for TTL;
// temperror verdicts for the shorter TempErrorTTL, so a DNS outage is
// retried quickly instead of pinning "temperror" for the full TTL —
// that is the whole temperror policy: fail open briefly, re-ask soon.
type CachedChecker struct {
	inner *Checker
	clock simtime.Clock

	ttl        time.Duration
	tempTTL    time.Duration
	maxEntries int

	mu    sync.RWMutex
	cache map[cacheKey]cacheEntry

	checks     atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64
	temperrors atomic.Uint64
	evictions  atomic.Uint64
}

type cacheKey struct {
	domain string
	net    netip.Prefix
}

type cacheEntry struct {
	res     Result
	err     error
	expires int64 // unix ns
}

// CacheConfig tunes a CachedChecker; the zero value gets defaults.
type CacheConfig struct {
	// TTL is the lifetime of a cached verdict (default 10 min —
	// conservative versus typical SPF record TTLs of an hour).
	TTL time.Duration
	// TempErrorTTL is the lifetime of a cached temperror verdict
	// (default 30 s): long enough to shield a dead resolver from the
	// full RCPT rate, short enough to recover promptly.
	TempErrorTTL time.Duration
	// MaxEntries bounds the cache (default 65536); overflow evicts
	// arbitrary entries.
	MaxEntries int
	// Clock drives expiry; nil means real time (labs pass their
	// simulated clock so cached verdicts age deterministically).
	Clock simtime.Clock
}

// NewCached wraps checker with a verdict cache.
func NewCached(checker *Checker, cfg CacheConfig) *CachedChecker {
	if cfg.TTL <= 0 {
		cfg.TTL = 10 * time.Minute
	}
	if cfg.TempErrorTTL <= 0 {
		cfg.TempErrorTTL = 30 * time.Second
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 65536
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.Real{}
	}
	return &CachedChecker{
		inner:      checker,
		clock:      cfg.Clock,
		ttl:        cfg.TTL,
		tempTTL:    cfg.TempErrorTTL,
		maxEntries: cfg.MaxEntries,
		cache:      make(map[cacheKey]cacheEntry),
	}
}

// Check evaluates SPF like Checker.Check, answering repeat questions
// for the same (domain, client /24) from the cache. A warm hit takes a
// read lock and allocates nothing.
func (c *CachedChecker) Check(clientIP, mailFrom, helo string) (Result, error) {
	c.checks.Add(1)
	domain := smtpproto.DomainOf(mailFrom)
	if domain == "" {
		domain = dnsmsg.CanonicalName(helo)
	}
	key, cacheable := c.keyFor(domain, clientIP)
	nowNs := c.clock.Now().UnixNano()
	if cacheable {
		c.mu.RLock()
		e, ok := c.cache[key]
		c.mu.RUnlock()
		if ok && nowNs < e.expires {
			c.hits.Add(1)
			return e.res, e.err
		}
	}
	c.misses.Add(1)
	res, err := c.inner.Check(clientIP, mailFrom, helo)
	if res == ResultTempError {
		c.temperrors.Add(1)
	}
	if cacheable {
		ttl := c.ttl
		if res == ResultTempError {
			ttl = c.tempTTL
		}
		c.store(key, cacheEntry{res: res, err: err, expires: nowNs + int64(ttl)})
	}
	return res, err
}

// keyFor builds the cache key; unparseable client addresses are not
// cacheable (the inner checker answers permerror for them anyway).
func (c *CachedChecker) keyFor(domain, clientIP string) (cacheKey, bool) {
	if domain == "" {
		return cacheKey{}, false
	}
	a, err := netip.ParseAddr(clientIP)
	if err != nil {
		return cacheKey{}, false
	}
	a = a.Unmap()
	bits := 24
	if !a.Is4() {
		bits = 64
	}
	p, err := a.Prefix(bits)
	if err != nil {
		return cacheKey{}, false
	}
	return cacheKey{domain: domain, net: p}, true
}

func (c *CachedChecker) store(key cacheKey, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cache) >= c.maxEntries {
		// Prefer dropping expired entries; fall back to arbitrary
		// ones (map order) until there is room.
		nowNs := c.clock.Now().UnixNano()
		for k, old := range c.cache {
			if nowNs >= old.expires {
				delete(c.cache, k)
				c.evictions.Add(1)
				if len(c.cache) < c.maxEntries {
					break
				}
			}
		}
		for k := range c.cache {
			if len(c.cache) < c.maxEntries {
				break
			}
			delete(c.cache, k)
			c.evictions.Add(1)
		}
	}
	c.cache[key] = e
}

// Entries reports the current cache size.
func (c *CachedChecker) Entries() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cache)
}

// Register exports the checker's counters into reg under the stable
// spf_* namespace.
func (c *CachedChecker) Register(reg *metrics.Registry) {
	reg.CounterFunc("spf_checks_total",
		"SPF evaluations requested.",
		func() uint64 { return c.checks.Load() })
	reg.CounterFunc("spf_cache_hits_total",
		"SPF evaluations answered from the verdict cache.",
		func() uint64 { return c.hits.Load() })
	reg.CounterFunc("spf_cache_misses_total",
		"SPF evaluations resolved through DNS.",
		func() uint64 { return c.misses.Load() })
	reg.CounterFunc("spf_temperrors_total",
		"SPF evaluations ending in temperror (DNS trouble).",
		func() uint64 { return c.temperrors.Load() })
	reg.CounterFunc("spf_cache_evictions_total",
		"SPF cache entries evicted by the size bound.",
		func() uint64 { return c.evictions.Load() })
	reg.GaugeFunc("spf_cache_entries",
		"SPF verdict-cache entries.",
		func() float64 { return float64(c.Entries()) })
}
