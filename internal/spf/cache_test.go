package spf

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/simtime"
)

// buildCached publishes sender.example (ip4:192.0.2.0/24 mx -all) behind
// a transport whose failures are switchable, so tests can take the DNS
// "down" and watch the temperror policy.
func buildCached(t *testing.T, cfg CacheConfig) (*CachedChecker, *simtime.Sim, *bool) {
	t.Helper()
	dns := dnsserver.New()
	z := dnsserver.NewZone("sender.example")
	z.MustAdd(dnsmsg.RR{Name: "sender.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: Record("ip4:192.0.2.0/24", "-all")})
	dns.AddZone(z)

	clock := simtime.NewSim(simtime.Epoch)
	down := false
	direct := dnsresolver.Direct(dns)
	flaky := dnsresolver.TransportFunc(func(q *dnsmsg.Message) (*dnsmsg.Message, error) {
		if down {
			return nil, errors.New("dns unreachable")
		}
		return direct.Exchange(q)
	})
	r := dnsresolver.New(flaky, clock)
	r.DisableCache = true
	cfg.Clock = clock
	cc := NewCached(New(r), cfg)
	return cc, clock, &down
}

func TestCachedCheckerHitAndExpiry(t *testing.T) {
	cc, clock, _ := buildCached(t, CacheConfig{TTL: 10 * time.Minute})

	res, err := cc.Check("192.0.2.10", "ads@sender.example", "sender.example")
	if err != nil || res != ResultPass {
		t.Fatalf("first check = %v, %v", res, err)
	}
	// Same domain, different host in the same /24: served from cache.
	res, err = cc.Check("192.0.2.77", "other@sender.example", "sender.example")
	if err != nil || res != ResultPass {
		t.Fatalf("sibling check = %v, %v", res, err)
	}
	if h, m := cc.hits.Load(), cc.misses.Load(); h != 1 || m != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", h, m)
	}
	// A different /24 is a different question.
	if res, _ := cc.Check("192.0.3.10", "ads@sender.example", ""); res != ResultFail {
		t.Fatalf("other-subnet check = %v, want fail", res)
	}
	if m := cc.misses.Load(); m != 2 {
		t.Fatalf("misses after other subnet = %d, want 2", m)
	}
	if cc.Entries() != 2 {
		t.Fatalf("entries = %d, want 2", cc.Entries())
	}

	// Within the TTL the verdict is cached; past it the graph is re-walked.
	clock.Advance(9 * time.Minute)
	cc.Check("192.0.2.10", "ads@sender.example", "")
	if m := cc.misses.Load(); m != 2 {
		t.Fatalf("misses before expiry = %d, want 2", m)
	}
	clock.Advance(2 * time.Minute)
	cc.Check("192.0.2.10", "ads@sender.example", "")
	if m := cc.misses.Load(); m != 3 {
		t.Fatalf("misses after expiry = %d, want 3", m)
	}
}

// TestCachedCheckerTempError exercises the temperror policy: while the
// DNS is unreachable the verdict is temperror, cached only for the
// short TempErrorTTL so recovery is noticed promptly — not pinned for
// the full verdict TTL.
func TestCachedCheckerTempError(t *testing.T) {
	cc, clock, down := buildCached(t, CacheConfig{
		TTL:          10 * time.Minute,
		TempErrorTTL: 30 * time.Second,
	})
	*down = true

	res, err := cc.Check("192.0.2.10", "ads@sender.example", "sender.example")
	if res != ResultTempError {
		t.Fatalf("check with DNS down = %v, %v; want temperror", res, err)
	}
	if cc.temperrors.Load() != 1 {
		t.Fatalf("temperrors = %d, want 1", cc.temperrors.Load())
	}
	// The temperror is itself cached (shielding a dead resolver from the
	// full RCPT rate)...
	if res, _ := cc.Check("192.0.2.11", "ads@sender.example", ""); res != ResultTempError {
		t.Fatalf("cached temperror = %v", res)
	}
	if h := cc.hits.Load(); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}

	// ...but only for TempErrorTTL: once the DNS is back, the next check
	// after the short TTL sees the real verdict, long before the 10 min
	// a regular verdict would have been pinned for.
	*down = false
	clock.Advance(31 * time.Second)
	res, err = cc.Check("192.0.2.10", "ads@sender.example", "")
	if err != nil || res != ResultPass {
		t.Fatalf("check after recovery = %v, %v; want pass", res, err)
	}
	if cc.temperrors.Load() != 1 {
		t.Fatalf("temperrors after recovery = %d, want 1", cc.temperrors.Load())
	}
}

func TestCachedCheckerEviction(t *testing.T) {
	cc, _, _ := buildCached(t, CacheConfig{MaxEntries: 2})
	// Three distinct /24s against a 2-entry bound.
	cc.Check("192.0.2.10", "ads@sender.example", "")
	cc.Check("192.0.3.10", "ads@sender.example", "")
	cc.Check("192.0.4.10", "ads@sender.example", "")
	if cc.Entries() > 2 {
		t.Fatalf("entries = %d, want <= 2", cc.Entries())
	}
	if cc.evictions.Load() == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestCachedCheckerUncacheable(t *testing.T) {
	cc, _, _ := buildCached(t, CacheConfig{})
	// Unparseable client IP: still answered (permerror), never cached.
	res, _ := cc.Check("not-an-ip", "ads@sender.example", "")
	if res != ResultPermError {
		t.Fatalf("bad IP = %v, want permerror", res)
	}
	// No domain at all (null sender, no HELO): same deal.
	cc.Check("192.0.2.10", "", "")
	if cc.Entries() != 0 {
		t.Fatalf("entries = %d, want 0", cc.Entries())
	}
}
