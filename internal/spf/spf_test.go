package spf

import (
	"strings"
	"testing"

	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/simtime"
)

// buildChecker publishes the given TXT strings (plus supporting records)
// and returns a Checker.
func buildChecker(t *testing.T) *Checker {
	t.Helper()
	dns := dnsserver.New()

	z := dnsserver.NewZone("sender.example")
	z.MustAdd(dnsmsg.RR{Name: "sender.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: Record("ip4:192.0.2.0/24", "mx", "-all")})
	z.MustAdd(dnsmsg.RR{Name: "sender.example", Type: dnsmsg.TypeMX, TTL: 300,
		Data: dnsmsg.MX{Preference: 10, Host: "mail.sender.example"}})
	z.MustAdd(dnsmsg.RR{Name: "mail.sender.example", Type: dnsmsg.TypeA, TTL: 300,
		Data: dnsmsg.MustIPv4("198.51.100.25")})
	dns.AddZone(z)

	soft := dnsserver.NewZone("soft.example")
	soft.MustAdd(dnsmsg.RR{Name: "soft.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: Record("a", "~all")})
	soft.MustAdd(dnsmsg.RR{Name: "soft.example", Type: dnsmsg.TypeA, TTL: 300,
		Data: dnsmsg.MustIPv4("203.0.113.77")})
	dns.AddZone(soft)

	inc := dnsserver.NewZone("newsletter.example")
	inc.MustAdd(dnsmsg.RR{Name: "newsletter.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: Record("include:sender.example", "-all")})
	dns.AddZone(inc)

	// A record-less domain and one with a broken record.
	empty := dnsserver.NewZone("norecord.example")
	empty.MustAdd(dnsmsg.RR{Name: "norecord.example", Type: dnsmsg.TypeA, TTL: 300,
		Data: dnsmsg.MustIPv4("203.0.113.1")})
	dns.AddZone(empty)

	dup := dnsserver.NewZone("dup.example")
	dup.MustAdd(dnsmsg.RR{Name: "dup.example", Type: dnsmsg.TypeTXT, TTL: 300, Data: Record("-all")})
	dup.MustAdd(dnsmsg.RR{Name: "dup.example", Type: dnsmsg.TypeTXT, TTL: 300, Data: Record("+all")})
	dns.AddZone(dup)

	weird := dnsserver.NewZone("weird.example")
	weird.MustAdd(dnsmsg.RR{Name: "weird.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: Record("ptr", "-all")})
	dns.AddZone(weird)

	loop := dnsserver.NewZone("loop.example")
	loop.MustAdd(dnsmsg.RR{Name: "loop.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: Record("include:loop.example")})
	dns.AddZone(loop)

	r := dnsresolver.New(dnsresolver.Direct(dns), simtime.NewSim(simtime.Epoch))
	return New(r)
}

func TestCheckResults(t *testing.T) {
	c := buildChecker(t)
	cases := []struct {
		name     string
		ip       string
		mailFrom string
		want     Result
	}{
		{"ip4 cidr pass", "192.0.2.55", "user@sender.example", ResultPass},
		{"mx pass", "198.51.100.25", "user@sender.example", ResultPass},
		{"fail", "203.0.113.9", "user@sender.example", ResultFail},
		{"a pass", "203.0.113.77", "user@soft.example", ResultPass},
		{"softfail", "203.0.113.78", "user@soft.example", ResultSoftFail},
		{"include pass", "192.0.2.10", "user@newsletter.example", ResultPass},
		{"include fail", "203.0.113.9", "user@newsletter.example", ResultFail},
		{"no record", "192.0.2.1", "user@norecord.example", ResultNone},
		{"nxdomain none", "192.0.2.1", "user@ghost.sender.example", ResultNone},
		{"refused temperror", "192.0.2.1", "user@ghost.example", ResultTempError},
		{"duplicate records", "192.0.2.1", "user@dup.example", ResultPermError},
		{"unsupported mechanism", "192.0.2.1", "user@weird.example", ResultPermError},
		{"include loop", "192.0.2.1", "user@loop.example", ResultPermError},
	}
	for _, tc := range cases {
		got, _ := c.Check(tc.ip, tc.mailFrom, "client.example")
		if got != tc.want {
			t.Errorf("%s: Check = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCheckNullSenderUsesHelo(t *testing.T) {
	c := buildChecker(t)
	got, _ := c.Check("192.0.2.5", "", "sender.example")
	if got != ResultPass {
		t.Fatalf("HELO fallback = %v, want pass", got)
	}
	if got, _ := c.Check("192.0.2.5", "", ""); got != ResultNone {
		t.Fatalf("no identity = %v, want none", got)
	}
}

func TestCheckBadClientIP(t *testing.T) {
	c := buildChecker(t)
	if got, _ := c.Check("not-an-ip", "user@sender.example", ""); got != ResultPermError {
		t.Fatalf("bad IP = %v", got)
	}
}

func TestNeutralWhenNoMechanismMatches(t *testing.T) {
	dns := dnsserver.New()
	z := dnsserver.NewZone("open.example")
	z.MustAdd(dnsmsg.RR{Name: "open.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: Record("ip4:192.0.2.1")}) // no trailing all
	dns.AddZone(z)
	c := New(dnsresolver.New(dnsresolver.Direct(dns), simtime.NewSim(simtime.Epoch)))
	got, _ := c.Check("203.0.113.1", "u@open.example", "")
	if got != ResultNeutral {
		t.Fatalf("fallthrough = %v, want neutral", got)
	}
}

func TestExplicitQualifiers(t *testing.T) {
	dns := dnsserver.New()
	z := dnsserver.NewZone("q.example")
	z.MustAdd(dnsmsg.RR{Name: "q.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: Record("?ip4:10.0.0.1", "+ip4:10.0.0.2", "~ip4:10.0.0.3", "-all")})
	dns.AddZone(z)
	c := New(dnsresolver.New(dnsresolver.Direct(dns), simtime.NewSim(simtime.Epoch)))
	for ip, want := range map[string]Result{
		"10.0.0.1": ResultNeutral,
		"10.0.0.2": ResultPass,
		"10.0.0.3": ResultSoftFail,
		"10.0.0.4": ResultFail,
	} {
		if got, _ := c.Check(ip, "u@q.example", ""); got != want {
			t.Errorf("%s = %v, want %v", ip, got, want)
		}
	}
}

func TestDNSMechanismLimit(t *testing.T) {
	// A record with 11 mx mechanisms exceeds the RFC's 10-lookup cap.
	terms := make([]string, 0, 12)
	for i := 0; i < 11; i++ {
		terms = append(terms, "mx:hop"+strings.Repeat("x", i)+".example")
	}
	terms = append(terms, "-all")
	dns := dnsserver.New()
	z := dnsserver.NewZone("many.example")
	z.MustAdd(dnsmsg.RR{Name: "many.example", Type: dnsmsg.TypeTXT, TTL: 300, Data: Record(terms...)})
	dns.AddZone(z)
	c := New(dnsresolver.New(dnsresolver.Direct(dns), simtime.NewSim(simtime.Epoch)))
	got, _ := c.Check("192.0.2.1", "u@many.example", "")
	if got != ResultTempError && got != ResultPermError {
		t.Fatalf("limit breach = %v, want an error result", got)
	}
}

func TestRecordBuilder(t *testing.T) {
	txt := Record("mx", "-all")
	if len(txt.Strings) != 1 || txt.Strings[0] != "v=spf1 mx -all" {
		t.Fatalf("Record = %v", txt.Strings)
	}
}

func TestUnknownModifierIgnored(t *testing.T) {
	dns := dnsserver.New()
	z := dnsserver.NewZone("mod.example")
	z.MustAdd(dnsmsg.RR{Name: "mod.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: dnsmsg.TXT{Strings: []string{"v=spf1 unknown=thing ip4:10.1.1.1 -all"}}})
	dns.AddZone(z)
	c := New(dnsresolver.New(dnsresolver.Direct(dns), simtime.NewSim(simtime.Epoch)))
	if got, _ := c.Check("10.1.1.1", "u@mod.example", ""); got != ResultPass {
		t.Fatalf("with modifier = %v, want pass", got)
	}
}
