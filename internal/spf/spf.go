// Package spf implements a practical subset of SPF (RFC 7208), the
// sender-authentication technique the paper lists among the established
// pre-acceptance defenses ([3], openspf.org) that greylisting and
// nolisting complement. Having it in the library completes the
// sender-based filtering toolbox: a deployment can layer SPF, DNSBL,
// nolisting and greylisting in one RCPT hook.
//
// Supported: the v=spf1 record discovered in TXT; mechanisms all, ip4
// (address or CIDR), a, mx (with optional :domain), include; qualifiers
// + - ~ ?; the RFC's limit of 10 DNS-querying mechanisms per check.
// Unsupported (returning PermError where the RFC demands it): macros,
// exp=, ptr, exists, redirect=.
package spf

import (
	"errors"
	"fmt"
	"net"
	"strings"

	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/smtpproto"
)

// Result is an SPF evaluation outcome (RFC 7208 §2.6).
type Result string

// Results.
const (
	// ResultNone: no SPF record published.
	ResultNone Result = "none"
	// ResultNeutral: the record makes no assertion ("?").
	ResultNeutral Result = "neutral"
	// ResultPass: the client is authorized.
	ResultPass Result = "pass"
	// ResultFail: the client is NOT authorized ("-").
	ResultFail Result = "fail"
	// ResultSoftFail: probably not authorized ("~").
	ResultSoftFail Result = "softfail"
	// ResultTempError: a DNS lookup failed transiently.
	ResultTempError Result = "temperror"
	// ResultPermError: the record cannot be interpreted.
	ResultPermError Result = "permerror"
)

// maxDNSMechanisms is RFC 7208 §4.6.4's lookup limit.
const maxDNSMechanisms = 10

// Checker evaluates SPF through a resolver.
type Checker struct {
	resolver *dnsresolver.Resolver
}

// New returns a Checker.
func New(resolver *dnsresolver.Resolver) *Checker {
	return &Checker{resolver: resolver}
}

// Check evaluates the SPF policy of the MAIL FROM domain (falling back to
// the HELO name for a null sender) against the connecting client address.
func (c *Checker) Check(clientIP, mailFrom, helo string) (Result, error) {
	domain := smtpproto.DomainOf(mailFrom)
	if domain == "" {
		domain = dnsmsg.CanonicalName(helo)
	}
	if domain == "" {
		return ResultNone, nil
	}
	ip := net.ParseIP(clientIP)
	if ip == nil {
		return ResultPermError, fmt.Errorf("spf: bad client address %q", clientIP)
	}
	budget := maxDNSMechanisms
	return c.checkHost(ip, domain, &budget, 0)
}

const maxIncludeDepth = 10

func (c *Checker) checkHost(ip net.IP, domain string, budget *int, depth int) (Result, error) {
	if depth > maxIncludeDepth {
		return ResultPermError, fmt.Errorf("spf: include recursion too deep at %s", domain)
	}
	record, result, err := c.lookupRecord(domain)
	if result != "" {
		return result, err
	}

	for _, term := range strings.Fields(record)[1:] { // skip "v=spf1"
		qualifier, mech := splitQualifier(term)
		name, arg, _ := strings.Cut(mech, ":")
		name = strings.ToLower(name)

		var matched bool
		var mechErr error
		switch name {
		case "all":
			matched = true
		case "ip4":
			matched, mechErr = matchIP4(ip, arg)
		case "a":
			matched, mechErr = c.matchA(ip, orDefault(arg, domain), budget)
		case "mx":
			matched, mechErr = c.matchMX(ip, orDefault(arg, domain), budget)
		case "include":
			if arg == "" {
				return ResultPermError, fmt.Errorf("spf: include without domain in %q", term)
			}
			if !spend(budget) {
				return ResultPermError, fmt.Errorf("spf: DNS mechanism limit exceeded")
			}
			sub, err := c.checkHost(ip, arg, budget, depth+1)
			switch sub {
			case ResultPass:
				matched = true
			case ResultTempError, ResultPermError:
				return sub, err
			case ResultNone:
				return ResultPermError, fmt.Errorf("spf: include target %s has no record", arg)
			}
		case "ptr", "exists", "exp", "redirect":
			return ResultPermError, fmt.Errorf("spf: unsupported mechanism %q", name)
		default:
			if strings.Contains(name, "=") {
				continue // unknown modifier: ignored per RFC
			}
			return ResultPermError, fmt.Errorf("spf: unknown mechanism %q", name)
		}
		if mechErr != nil {
			return ResultTempError, mechErr
		}
		if matched {
			return qualifierResult(qualifier), nil
		}
	}
	return ResultNeutral, nil
}

// lookupRecord fetches the domain's single v=spf1 record. The Result
// return is non-empty when the lookup itself decides the outcome.
func (c *Checker) lookupRecord(domain string) (record string, result Result, err error) {
	resp, err := c.resolver.Query(domain, dnsmsg.TypeTXT)
	if err != nil {
		if errors.Is(err, dnsresolver.ErrNXDomain) {
			// RFC 7208 §4.3: a nonexistent domain yields None.
			return "", ResultNone, nil
		}
		return "", ResultTempError, err
	}
	var records []string
	for _, rr := range resp.Answers {
		txt, ok := rr.Data.(dnsmsg.TXT)
		if !ok {
			continue
		}
		joined := strings.Join(txt.Strings, "")
		if joined == "v=spf1" || strings.HasPrefix(joined, "v=spf1 ") {
			records = append(records, joined)
		}
	}
	switch len(records) {
	case 0:
		return "", ResultNone, nil
	case 1:
		return records[0], "", nil
	default:
		return "", ResultPermError, fmt.Errorf("spf: %d v=spf1 records at %s", len(records), domain)
	}
}

func splitQualifier(term string) (byte, string) {
	if len(term) > 0 {
		switch term[0] {
		case '+', '-', '~', '?':
			return term[0], term[1:]
		}
	}
	return '+', term
}

func qualifierResult(q byte) Result {
	switch q {
	case '-':
		return ResultFail
	case '~':
		return ResultSoftFail
	case '?':
		return ResultNeutral
	default:
		return ResultPass
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func spend(budget *int) bool {
	if *budget <= 0 {
		return false
	}
	*budget--
	return true
}

func matchIP4(ip net.IP, arg string) (bool, error) {
	if arg == "" {
		return false, fmt.Errorf("spf: ip4 without address")
	}
	if strings.Contains(arg, "/") {
		_, ipnet, err := net.ParseCIDR(arg)
		if err != nil {
			return false, fmt.Errorf("spf: %w", err)
		}
		return ipnet.Contains(ip), nil
	}
	target := net.ParseIP(arg)
	if target == nil {
		return false, fmt.Errorf("spf: bad ip4 %q", arg)
	}
	return target.Equal(ip), nil
}

func (c *Checker) matchA(ip net.IP, domain string, budget *int) (bool, error) {
	if !spend(budget) {
		return false, fmt.Errorf("spf: DNS mechanism limit exceeded")
	}
	addrs, err := c.resolver.LookupA(domain)
	if err != nil {
		return false, nil // nonexistent → no match, per RFC
	}
	for _, a := range addrs {
		if net.ParseIP(a).Equal(ip) {
			return true, nil
		}
	}
	return false, nil
}

func (c *Checker) matchMX(ip net.IP, domain string, budget *int) (bool, error) {
	if !spend(budget) {
		return false, fmt.Errorf("spf: DNS mechanism limit exceeded")
	}
	hosts, err := c.resolver.LookupMX(domain)
	if err != nil {
		return false, nil
	}
	for _, h := range hosts {
		for _, a := range h.Addrs {
			if net.ParseIP(a).Equal(ip) {
				return true, nil
			}
		}
	}
	return false, nil
}

// Record builds a v=spf1 TXT record for publication — the deployment-side
// helper matching the checker.
func Record(terms ...string) dnsmsg.TXT {
	return dnsmsg.TXT{Strings: []string{"v=spf1 " + strings.Join(terms, " ")}}
}
