package dnsmsg

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		Header: Header{
			ID:                 0xBEEF,
			Response:           true,
			Authoritative:      true,
			RecursionDesired:   true,
			RecursionAvailable: true,
			RCode:              RCodeSuccess,
		},
		Questions: []Question{{Name: "foo.net", Type: TypeMX, Class: ClassINET}},
		Answers: []RR{
			{Name: "foo.net", Type: TypeMX, Class: ClassINET, TTL: 300,
				Data: MX{Preference: 0, Host: "smtp.foo.net"}},
			{Name: "foo.net", Type: TypeMX, Class: ClassINET, TTL: 300,
				Data: MX{Preference: 15, Host: "smtp1.foo.net"}},
		},
		Additional: []RR{
			{Name: "smtp.foo.net", Type: TypeA, Class: ClassINET, TTL: 300,
				Data: MustIPv4("1.2.3.4")},
		},
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	// "foo.net" appears 4 times; with compression the message must be
	// far smaller than the uncompressed sum. A loose but meaningful
	// bound: every name after the first occurrence costs 2 bytes
	// (pointer) instead of 9 ("\x03foo\x03net\x00").
	if len(wire) > 110 {
		t.Fatalf("compressed message is %d bytes, expected <= 110", len(wire))
	}
	// And compression pointers must round-trip (already covered above,
	// but assert the names specifically).
	got, _ := Unpack(wire)
	if got.Answers[1].Data.(MX).Host != "smtp1.foo.net" {
		t.Fatalf("compressed MX host = %q", got.Answers[1].Data.(MX).Host)
	}
}

func TestRDataRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		rr   RR
	}{
		{"A", RR{Name: "a.example", Type: TypeA, Class: ClassINET, TTL: 60, Data: MustIPv4("203.0.113.7")}},
		{"AAAA", RR{Name: "a.example", Type: TypeAAAA, Class: ClassINET, TTL: 60, Data: AAAA{IP: [16]byte{0x20, 0x01, 0x0d, 0xb8, 15: 1}}}},
		{"MX", RR{Name: "a.example", Type: TypeMX, Class: ClassINET, TTL: 60, Data: MX{Preference: 10, Host: "mx.a.example"}}},
		{"NS", RR{Name: "a.example", Type: TypeNS, Class: ClassINET, TTL: 60, Data: NS{Host: "ns1.a.example"}}},
		{"CNAME", RR{Name: "www.a.example", Type: TypeCNAME, Class: ClassINET, TTL: 60, Data: CNAME{Target: "a.example"}}},
		{"PTR", RR{Name: "7.113.0.203.in-addr.arpa", Type: TypePTR, Class: ClassINET, TTL: 60, Data: PTR{Target: "a.example"}}},
		{"TXT", RR{Name: "a.example", Type: TypeTXT, Class: ClassINET, TTL: 60, Data: TXT{Strings: []string{"v=spf1 -all", "second"}}}},
		{"SOA", RR{Name: "a.example", Type: TypeSOA, Class: ClassINET, TTL: 60, Data: SOA{
			MName: "ns1.a.example", RName: "hostmaster.a.example",
			Serial: 2015022801, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}}},
		{"Raw", RR{Name: "a.example", Type: Type(99), Class: ClassINET, TTL: 60, Data: Raw{Bytes: []byte{1, 2, 3}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &Message{Header: Header{ID: 1, Response: true}, Answers: []RR{tc.rr}}
			wire, err := m.Pack()
			if err != nil {
				t.Fatalf("Pack: %v", err)
			}
			got, err := Unpack(wire)
			if err != nil {
				t.Fatalf("Unpack: %v", err)
			}
			if !reflect.DeepEqual(got.Answers[0], tc.rr) {
				t.Fatalf("round trip:\n got %+v\nwant %+v", got.Answers[0], tc.rr)
			}
		})
	}
}

func TestNewQueryShape(t *testing.T) {
	q := NewQuery(42, "Foo.NET.", TypeANY)
	if q.Header.ID != 42 || q.Header.Response || !q.Header.RecursionDesired {
		t.Fatalf("query header = %+v", q.Header)
	}
	if len(q.Questions) != 1 {
		t.Fatalf("questions = %d, want 1", len(q.Questions))
	}
	if got := q.Questions[0].Name; got != "foo.net" {
		t.Fatalf("question name = %q, want canonicalized %q", got, "foo.net")
	}
}

func TestReplyEchoesQuestion(t *testing.T) {
	q := NewQuery(7, "foo.net", TypeMX)
	r := q.Reply()
	if !r.Header.Response || r.Header.ID != 7 {
		t.Fatalf("reply header = %+v", r.Header)
	}
	if !reflect.DeepEqual(r.Questions, q.Questions) {
		t.Fatalf("reply questions = %+v", r.Questions)
	}
	if !r.Header.RecursionDesired {
		t.Fatal("reply did not copy RD")
	}
}

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"FOO.NET":       "foo.net",
		"foo.net.":      "foo.net",
		"Smtp.Foo.NET.": "smtp.foo.net",
		"":              "",
		".":             "",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseIPv4(t *testing.T) {
	good := map[string][4]byte{
		"0.0.0.0":         {0, 0, 0, 0},
		"255.255.255.255": {255, 255, 255, 255},
		"10.20.30.40":     {10, 20, 30, 40},
	}
	for in, want := range good {
		a, err := ParseIPv4(in)
		if err != nil {
			t.Errorf("ParseIPv4(%q): %v", in, err)
			continue
		}
		if a.IP != want {
			t.Errorf("ParseIPv4(%q) = %v, want %v", in, a.IP, want)
		}
		if a.String() != in {
			t.Errorf("A(%q).String() = %q", in, a.String())
		}
	}
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.4444"}
	for _, in := range bad {
		if _, err := ParseIPv4(in); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded, want error", in)
		}
	}
}

func TestMustIPv4PanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustIPv4 did not panic")
		}
	}()
	MustIPv4("not-an-ip")
}

func TestPackRejectsBadNames(t *testing.T) {
	long := strings.Repeat("a", 64) + ".example"
	cases := []struct {
		name string
		want error
	}{
		{long, ErrLabelTooLong},
		{strings.Repeat("abcdefg.", 40), ErrNameTooLong},
		{"foo..bar", ErrEmptyLabel},
	}
	for _, tc := range cases {
		m := NewQuery(1, tc.name, TypeA)
		if _, err := m.Pack(); !errors.Is(err, tc.want) {
			t.Errorf("Pack(%q) error = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestUnpackRejectsTruncation(t *testing.T) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	for i := 1; i < len(wire); i++ {
		if _, err := Unpack(wire[:i]); err == nil {
			t.Fatalf("Unpack accepted %d-byte truncation", i)
		}
	}
}

func TestUnpackRejectsTrailingBytes(t *testing.T) {
	wire, _ := sampleMessage().Pack()
	wire = append(wire, 0x00)
	if _, err := Unpack(wire); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("Unpack with trailing byte = %v, want ErrTrailingBytes", err)
	}
}

func TestUnpackRejectsPointerLoops(t *testing.T) {
	// Header claiming one question, then a name that is a pointer to
	// itself at offset 12.
	wire := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xC0, 12, // pointer to itself
		0, 1, 0, 1,
	}
	if _, err := Unpack(wire); !errors.Is(err, ErrPointerLoop) {
		t.Fatalf("self-pointer = %v, want ErrPointerLoop", err)
	}
}

func TestUnpackRejectsReservedLabelType(t *testing.T) {
	wire := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0x80, 1, // reserved 10-prefix label
		0, 1, 0, 1,
	}
	if _, err := Unpack(wire); err == nil {
		t.Fatal("reserved label type accepted")
	}
}

func TestTXTStringTooLong(t *testing.T) {
	m := &Message{
		Header: Header{ID: 1},
		Answers: []RR{{Name: "a.example", Type: TypeTXT, Class: ClassINET,
			Data: TXT{Strings: []string{strings.Repeat("x", 256)}}}},
	}
	if _, err := m.Pack(); !errors.Is(err, ErrBadRData) {
		t.Fatalf("Pack long TXT = %v, want ErrBadRData", err)
	}
}

func TestNilRDataRejected(t *testing.T) {
	m := &Message{Header: Header{ID: 1}, Answers: []RR{{Name: "a.example", Type: TypeA, Class: ClassINET}}}
	if _, err := m.Pack(); !errors.Is(err, ErrBadRData) {
		t.Fatalf("Pack nil rdata = %v, want ErrBadRData", err)
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	if TypeMX.String() != "MX" || TypeANY.String() != "ANY" || Type(77).String() != "TYPE77" {
		t.Error("Type.String mismatch")
	}
	if ClassINET.String() != "IN" || Class(9).String() != "CLASS9" {
		t.Error("Class.String mismatch")
	}
	if RCodeNameError.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("RCode.String mismatch")
	}
	rr := RR{Name: "foo.net", Type: TypeMX, Class: ClassINET, TTL: 300, Data: MX{Preference: 5, Host: "mx.foo.net"}}
	if got := rr.String(); got != "foo.net 300 IN MX 5 mx.foo.net" {
		t.Errorf("RR.String = %q", got)
	}
}

// randomName builds a valid random domain name from a constrained alphabet.
func randomName(r *rand.Rand) string {
	labels := 1 + r.Intn(4)
	parts := make([]string, labels)
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-"
	for i := range parts {
		n := 1 + r.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alpha[r.Intn(len(alpha)-1)]) // avoid '-' heavy names; still valid anyway
		}
		parts[i] = sb.String()
	}
	return strings.Join(parts, ".")
}

// Property: any message assembled from random valid names and supported
// rdata types round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(id uint16, seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m := &Message{Header: Header{ID: id, Response: rr.Intn(2) == 0, RCode: RCode(rr.Intn(6))}}
		m.Questions = append(m.Questions, Question{Name: randomName(rr), Type: TypeMX, Class: ClassINET})
		n := rr.Intn(6)
		for i := 0; i < n; i++ {
			name := randomName(rr)
			switch rr.Intn(4) {
			case 0:
				m.Answers = append(m.Answers, RR{Name: name, Type: TypeA, Class: ClassINET, TTL: uint32(rr.Intn(86400)),
					Data: A{IP: [4]byte{byte(rr.Intn(256)), byte(rr.Intn(256)), byte(rr.Intn(256)), byte(rr.Intn(256))}}})
			case 1:
				m.Answers = append(m.Answers, RR{Name: name, Type: TypeMX, Class: ClassINET, TTL: uint32(rr.Intn(86400)),
					Data: MX{Preference: uint16(rr.Intn(100)), Host: randomName(rr)}})
			case 2:
				m.Answers = append(m.Answers, RR{Name: name, Type: TypeCNAME, Class: ClassINET, TTL: uint32(rr.Intn(86400)),
					Data: CNAME{Target: randomName(rr)}})
			case 3:
				m.Answers = append(m.Answers, RR{Name: name, Type: TypeTXT, Class: ClassINET, TTL: uint32(rr.Intn(86400)),
					Data: TXT{Strings: []string{randomName(rr)}}})
			}
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Unpack never panics on arbitrary input (fuzz-like).
func TestUnpackNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAllStringers(t *testing.T) {
	cases := map[string]string{
		(Question{Name: "foo.net", Type: TypeMX, Class: ClassINET}).String():                           "foo.net IN MX",
		(MX{Preference: 5, Host: "mx.x"}).String():                                                     "5 mx.x",
		(NS{Host: "ns.x"}).String():                                                                    "ns.x",
		(CNAME{Target: "t.x"}).String():                                                                "t.x",
		(PTR{Target: "p.x"}).String():                                                                  "p.x",
		(TXT{Strings: []string{"a", "b c"}}).String():                                                  `"a" "b c"`,
		(SOA{MName: "m", RName: "r", Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5}).String(): "m r 1 2 3 4 5",
		(Raw{Bytes: []byte{0xAB}}).String():                                                            `\# 1 ab`,
		(AAAA{IP: [16]byte{0x20, 0x01, 0x0d, 0xb8, 15: 1}}).String():                                   "2001:db8:0:0:0:0:0:1",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	// Type/Class/RCode coverage for every named constant.
	for typ, want := range map[Type]string{
		TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME", TypeSOA: "SOA",
		TypePTR: "PTR", TypeMX: "MX", TypeTXT: "TXT", TypeAAAA: "AAAA", TypeANY: "ANY",
	} {
		if typ.String() != want {
			t.Errorf("Type %d = %q, want %q", typ, typ.String(), want)
		}
	}
	for rc, want := range map[RCode]string{
		RCodeSuccess: "NOERROR", RCodeFormatError: "FORMERR", RCodeServerFailure: "SERVFAIL",
		RCodeNameError: "NXDOMAIN", RCodeNotImplemented: "NOTIMP", RCodeRefused: "REFUSED",
	} {
		if rc.String() != want {
			t.Errorf("RCode %d = %q, want %q", rc, rc.String(), want)
		}
	}
	if ClassANY.String() != "ANY" {
		t.Error("ClassANY")
	}
}

func TestUnpackRejectsDottedLabel(t *testing.T) {
	// A wire label containing a literal '.' cannot round-trip through
	// the dotted text form and must be rejected (fuzz regression).
	wire := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		3, '.', '0', '0', 3, '0', '0', '0', 0,
		0, 1, 0, 1,
	}
	if _, err := Unpack(wire); !errors.Is(err, ErrBadLabelByte) {
		t.Fatalf("err = %v, want ErrBadLabelByte", err)
	}
}
