// Package dnsmsg implements the DNS wire format (RFC 1035): message
// packing and unpacking with name compression, the record types the
// reproduction needs (A, AAAA, NS, CNAME, SOA, PTR, MX, TXT) and the ANY
// pseudo-type used by the paper's "DNS Records (ANY)" scan dataset.
//
// The package is deliberately self-contained and symmetric: every message
// packed by Pack round-trips through Unpack, a property the test suite
// checks exhaustively, because both our authoritative server and our stub
// resolver are built on it.
package dnsmsg

import (
	"errors"
	"fmt"
	"strings"
)

// Type is a DNS RR type.
type Type uint16

// Record types used in this reproduction.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	// TypeANY is the query pseudo-type matching every record; the
	// scans.io dataset the paper uses was collected with ANY queries.
	TypeANY Type = 255
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class.
type Class uint16

// Classes.
const (
	ClassINET Class = 1
	ClassANY  Class = 255
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeSuccess        RCode = 0 // NOERROR
	RCodeFormatError    RCode = 1 // FORMERR
	RCodeServerFailure  RCode = 2 // SERVFAIL
	RCodeNameError      RCode = 3 // NXDOMAIN
	RCodeNotImplemented RCode = 4 // NOTIMP
	RCodeRefused        RCode = 5 // REFUSED
)

// String implements fmt.Stringer.
func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormatError:
		return "FORMERR"
	case RCodeServerFailure:
		return "SERVFAIL"
	case RCodeNameError:
		return "NXDOMAIN"
	case RCodeNotImplemented:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// OpCode is a DNS operation code. Only standard queries are used here.
type OpCode uint8

// OpQuery is the standard-query opcode.
const OpQuery OpCode = 0

// Errors returned by the codec.
var (
	ErrTruncated     = errors.New("dnsmsg: message truncated")
	ErrNameTooLong   = errors.New("dnsmsg: domain name exceeds 255 octets")
	ErrLabelTooLong  = errors.New("dnsmsg: label exceeds 63 octets")
	ErrEmptyLabel    = errors.New("dnsmsg: empty label")
	ErrPointerLoop   = errors.New("dnsmsg: compression pointer loop")
	ErrBadLabelByte  = errors.New("dnsmsg: label contains '.' or NUL")
	ErrTrailingBytes = errors.New("dnsmsg: trailing bytes after message")
	ErrBadRData      = errors.New("dnsmsg: malformed rdata")
)

// Header is the fixed 12-octet DNS message header, with the flag word
// broken out into named fields.
type Header struct {
	ID                 uint16
	Response           bool // QR
	OpCode             OpCode
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode
}

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String implements fmt.Stringer.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is a resource record. Data holds the typed record data; for record
// types this package does not model, Data is a Raw.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String implements fmt.Stringer.
func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", rr.Name, rr.TTL, rr.Class, rr.Type, rr.Data)
}

// RData is the typed payload of a resource record.
type RData interface {
	fmt.Stringer
	// pack appends the wire encoding of the rdata (without the
	// RDLENGTH prefix) to b, using cmp for name compression.
	pack(b []byte, cmp map[string]uint16) ([]byte, error)
}

// A is an IPv4 address record.
type A struct {
	IP [4]byte
}

// String implements fmt.Stringer.
func (a A) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3])
}

func (a A) pack(b []byte, _ map[string]uint16) ([]byte, error) {
	return append(b, a.IP[:]...), nil
}

// ParseIPv4 converts dotted-quad text into an A record payload.
func ParseIPv4(s string) (A, error) {
	var a A
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return a, fmt.Errorf("dnsmsg: %q is not a dotted quad", s)
	}
	for i, p := range parts {
		if p == "" || len(p) > 3 {
			return a, fmt.Errorf("dnsmsg: %q is not a dotted quad", s)
		}
		v := 0
		for _, c := range p {
			if c < '0' || c > '9' {
				return a, fmt.Errorf("dnsmsg: %q is not a dotted quad", s)
			}
			v = v*10 + int(c-'0')
		}
		if v > 255 {
			return a, fmt.Errorf("dnsmsg: octet %q out of range in %q", p, s)
		}
		a.IP[i] = byte(v)
	}
	return a, nil
}

// MustIPv4 is ParseIPv4 that panics on malformed input; for literals in
// tests and fixtures.
func MustIPv4(s string) A {
	a, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return a
}

// AAAA is an IPv6 address record.
type AAAA struct {
	IP [16]byte
}

// String implements fmt.Stringer.
func (a AAAA) String() string {
	var sb strings.Builder
	for i := 0; i < 16; i += 2 {
		if i > 0 {
			sb.WriteByte(':')
		}
		fmt.Fprintf(&sb, "%x", uint16(a.IP[i])<<8|uint16(a.IP[i+1]))
	}
	return sb.String()
}

func (a AAAA) pack(b []byte, _ map[string]uint16) ([]byte, error) {
	return append(b, a.IP[:]...), nil
}

// MX is a mail-exchanger record: the heart of both nolisting (publish a
// dead primary) and the bot MX-selection behaviours of Section IV-B.
type MX struct {
	// Preference orders MX records; lower values are higher priority
	// (RFC 5321 §5.1).
	Preference uint16
	// Host is the domain name of the mail exchanger.
	Host string
}

// String implements fmt.Stringer.
func (m MX) String() string { return fmt.Sprintf("%d %s", m.Preference, m.Host) }

func (m MX) pack(b []byte, cmp map[string]uint16) ([]byte, error) {
	b = append(b, byte(m.Preference>>8), byte(m.Preference))
	return packName(b, m.Host, cmp)
}

// NS is a name-server record.
type NS struct {
	Host string
}

// String implements fmt.Stringer.
func (n NS) String() string { return n.Host }

func (n NS) pack(b []byte, cmp map[string]uint16) ([]byte, error) {
	return packName(b, n.Host, cmp)
}

// CNAME is a canonical-name record.
type CNAME struct {
	Target string
}

// String implements fmt.Stringer.
func (c CNAME) String() string { return c.Target }

func (c CNAME) pack(b []byte, cmp map[string]uint16) ([]byte, error) {
	return packName(b, c.Target, cmp)
}

// PTR is a pointer record (reverse DNS, used by the scan dataset).
type PTR struct {
	Target string
}

// String implements fmt.Stringer.
func (p PTR) String() string { return p.Target }

func (p PTR) pack(b []byte, cmp map[string]uint16) ([]byte, error) {
	return packName(b, p.Target, cmp)
}

// TXT is a text record; each string is at most 255 octets on the wire.
type TXT struct {
	Strings []string
}

// String implements fmt.Stringer.
func (t TXT) String() string {
	quoted := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

func (t TXT) pack(b []byte, _ map[string]uint16) ([]byte, error) {
	for _, s := range t.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("dnsmsg: TXT string of %d octets: %w", len(s), ErrBadRData)
		}
		b = append(b, byte(len(s)))
		b = append(b, s...)
	}
	return b, nil
}

// SOA is a start-of-authority record.
type SOA struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// String implements fmt.Stringer.
func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

func (s SOA) pack(b []byte, cmp map[string]uint16) ([]byte, error) {
	var err error
	if b, err = packName(b, s.MName, cmp); err != nil {
		return nil, err
	}
	if b, err = packName(b, s.RName, cmp); err != nil {
		return nil, err
	}
	for _, v := range []uint32{s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum} {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return b, nil
}

// Raw carries the rdata of record types this package does not model.
type Raw struct {
	Bytes []byte
}

// String implements fmt.Stringer.
func (r Raw) String() string { return fmt.Sprintf("\\# %d %x", len(r.Bytes), r.Bytes) }

func (r Raw) pack(b []byte, _ map[string]uint16) ([]byte, error) {
	return append(b, r.Bytes...), nil
}

// Interface compliance.
var (
	_ RData = A{}
	_ RData = AAAA{}
	_ RData = MX{}
	_ RData = NS{}
	_ RData = CNAME{}
	_ RData = PTR{}
	_ RData = TXT{}
	_ RData = SOA{}
	_ RData = Raw{}
)

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery returns a standard recursive query for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: CanonicalName(name), Type: t, Class: ClassINET}},
	}
}

// Reply returns a response skeleton for m: same ID, question echoed,
// QR set, RD copied.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.Header.ID,
			Response:         true,
			OpCode:           m.Header.OpCode,
			RecursionDesired: m.Header.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// CanonicalName lower-cases a domain name and strips one trailing dot, so
// that "SMTP.Foo.NET." and "smtp.foo.net" compare equal. DNS names are
// case-insensitive (RFC 1035 §2.3.3).
func CanonicalName(name string) string {
	name = strings.TrimSuffix(name, ".")
	return strings.ToLower(name)
}

// flag word bit positions
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Pack encodes the message into wire format.
func (m *Message) Pack() ([]byte, error) {
	b := make([]byte, 0, 512)
	var flags uint16
	if m.Header.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= flagAA
	}
	if m.Header.Truncated {
		flags |= flagTC
	}
	if m.Header.RecursionDesired {
		flags |= flagRD
	}
	if m.Header.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.Header.RCode & 0xF)

	for _, v := range []uint16{
		m.Header.ID, flags,
		uint16(len(m.Questions)), uint16(len(m.Answers)),
		uint16(len(m.Authority)), uint16(len(m.Additional)),
	} {
		b = append(b, byte(v>>8), byte(v))
	}

	cmp := make(map[string]uint16)
	var err error
	for _, q := range m.Questions {
		if b, err = packName(b, q.Name, cmp); err != nil {
			return nil, fmt.Errorf("dnsmsg: packing question %q: %w", q.Name, err)
		}
		b = append(b, byte(q.Type>>8), byte(q.Type), byte(q.Class>>8), byte(q.Class))
	}
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if b, err = packRR(b, rr, cmp); err != nil {
				return nil, fmt.Errorf("dnsmsg: packing RR %q: %w", rr.Name, err)
			}
		}
	}
	return b, nil
}

func packRR(b []byte, rr RR, cmp map[string]uint16) ([]byte, error) {
	var err error
	if b, err = packName(b, rr.Name, cmp); err != nil {
		return nil, err
	}
	b = append(b,
		byte(rr.Type>>8), byte(rr.Type),
		byte(rr.Class>>8), byte(rr.Class),
		byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL))
	// Reserve RDLENGTH and backfill after packing the rdata.
	lenAt := len(b)
	b = append(b, 0, 0)
	if rr.Data == nil {
		return nil, fmt.Errorf("nil rdata: %w", ErrBadRData)
	}
	if b, err = rr.Data.pack(b, cmp); err != nil {
		return nil, err
	}
	rdlen := len(b) - lenAt - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("rdata of %d octets: %w", rdlen, ErrBadRData)
	}
	b[lenAt] = byte(rdlen >> 8)
	b[lenAt+1] = byte(rdlen)
	return b, nil
}

// packName appends the wire form of a domain name, registering and reusing
// compression pointers for every suffix seen so far.
func packName(b []byte, name string, cmp map[string]uint16) ([]byte, error) {
	name = CanonicalName(name)
	if name == "" {
		return append(b, 0), nil // root
	}
	if len(name) > 254 {
		return nil, ErrNameTooLong
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		if labels[i] == "" {
			return nil, ErrEmptyLabel
		}
		if len(labels[i]) > 63 {
			return nil, ErrLabelTooLong
		}
	}
	for i := range labels {
		suffix := strings.Join(labels[i:], ".")
		if off, ok := cmp[suffix]; ok {
			return append(b, 0xC0|byte(off>>8), byte(off)), nil
		}
		if len(b) < 0x4000 {
			cmp[suffix] = uint16(len(b))
		}
		b = append(b, byte(len(labels[i])))
		b = append(b, labels[i]...)
	}
	return append(b, 0), nil
}

// Unpack decodes a wire-format message. It rejects trailing garbage.
func Unpack(data []byte) (*Message, error) {
	d := &decoder{data: data}
	var m Message
	id, err := d.uint16()
	if err != nil {
		return nil, err
	}
	flags, err := d.uint16()
	if err != nil {
		return nil, err
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&flagQR != 0,
		OpCode:             OpCode(flags >> 11 & 0xF),
		Authoritative:      flags&flagAA != 0,
		Truncated:          flags&flagTC != 0,
		RecursionDesired:   flags&flagRD != 0,
		RecursionAvailable: flags&flagRA != 0,
		RCode:              RCode(flags & 0xF),
	}
	var counts [4]uint16
	for i := range counts {
		if counts[i], err = d.uint16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		q, err := d.question()
		if err != nil {
			return nil, fmt.Errorf("dnsmsg: question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []struct {
		dst *[]RR
		n   uint16
	}{
		{&m.Answers, counts[1]},
		{&m.Authority, counts[2]},
		{&m.Additional, counts[3]},
	}
	for _, sec := range sections {
		s, n := sec.dst, sec.n
		for i := 0; i < int(n); i++ {
			rr, err := d.rr()
			if err != nil {
				return nil, fmt.Errorf("dnsmsg: RR %d: %w", i, err)
			}
			*s = append(*s, rr)
		}
	}
	if d.off != len(d.data) {
		return nil, ErrTrailingBytes
	}
	return &m, nil
}

type decoder struct {
	data []byte
	off  int
}

func (d *decoder) uint16() (uint16, error) {
	if d.off+2 > len(d.data) {
		return 0, ErrTruncated
	}
	v := uint16(d.data[d.off])<<8 | uint16(d.data[d.off+1])
	d.off += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	hi, err := d.uint16()
	if err != nil {
		return 0, err
	}
	lo, err := d.uint16()
	if err != nil {
		return 0, err
	}
	return uint32(hi)<<16 | uint32(lo), nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.data) {
		return nil, ErrTruncated
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) question() (Question, error) {
	name, err := d.name()
	if err != nil {
		return Question{}, err
	}
	t, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: name, Type: Type(t), Class: Class(c)}, nil
}

func (d *decoder) rr() (RR, error) {
	name, err := d.name()
	if err != nil {
		return RR{}, err
	}
	t, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	c, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.uint32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	end := d.off + int(rdlen)
	if end > len(d.data) {
		return RR{}, ErrTruncated
	}
	rr := RR{Name: name, Type: Type(t), Class: Class(c), TTL: ttl}
	if rr.Data, err = d.rdata(Type(t), end); err != nil {
		return RR{}, err
	}
	if d.off != end {
		return RR{}, fmt.Errorf("rdata length mismatch: %w", ErrBadRData)
	}
	return rr, nil
}

func (d *decoder) rdata(t Type, end int) (RData, error) {
	switch t {
	case TypeA:
		b, err := d.bytes(4)
		if err != nil {
			return nil, err
		}
		var a A
		copy(a.IP[:], b)
		return a, nil
	case TypeAAAA:
		b, err := d.bytes(16)
		if err != nil {
			return nil, err
		}
		var a AAAA
		copy(a.IP[:], b)
		return a, nil
	case TypeMX:
		pref, err := d.uint16()
		if err != nil {
			return nil, err
		}
		host, err := d.name()
		if err != nil {
			return nil, err
		}
		return MX{Preference: pref, Host: host}, nil
	case TypeNS:
		host, err := d.name()
		if err != nil {
			return nil, err
		}
		return NS{Host: host}, nil
	case TypeCNAME:
		target, err := d.name()
		if err != nil {
			return nil, err
		}
		return CNAME{Target: target}, nil
	case TypePTR:
		target, err := d.name()
		if err != nil {
			return nil, err
		}
		return PTR{Target: target}, nil
	case TypeTXT:
		var txt TXT
		for d.off < end {
			n, err := d.bytes(1)
			if err != nil {
				return nil, err
			}
			s, err := d.bytes(int(n[0]))
			if err != nil {
				return nil, err
			}
			txt.Strings = append(txt.Strings, string(s))
		}
		return txt, nil
	case TypeSOA:
		var s SOA
		var err error
		if s.MName, err = d.name(); err != nil {
			return nil, err
		}
		if s.RName, err = d.name(); err != nil {
			return nil, err
		}
		for _, p := range []*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum} {
			if *p, err = d.uint32(); err != nil {
				return nil, err
			}
		}
		return s, nil
	default:
		b, err := d.bytes(end - d.off)
		if err != nil {
			return nil, err
		}
		return Raw{Bytes: append([]byte(nil), b...)}, nil
	}
}

// name decodes a possibly-compressed domain name starting at the current
// offset and leaves the offset just past it.
func (d *decoder) name() (string, error) {
	var sb strings.Builder
	off := d.off
	jumped := false
	jumps := 0
	for {
		if off >= len(d.data) {
			return "", ErrTruncated
		}
		b := d.data[off]
		switch {
		case b == 0:
			if !jumped {
				d.off = off + 1
			}
			return CanonicalName(sb.String()), nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(d.data) {
				return "", ErrTruncated
			}
			ptr := int(b&0x3F)<<8 | int(d.data[off+1])
			if !jumped {
				d.off = off + 2
			}
			jumped = true
			jumps++
			if jumps > 64 {
				return "", ErrPointerLoop
			}
			if ptr >= off {
				// Forward (or self) pointers can only loop.
				return "", ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", fmt.Errorf("reserved label type %#x: %w", b&0xC0, ErrBadRData)
		default:
			n := int(b)
			if off+1+n > len(d.data) {
				return "", ErrTruncated
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			if sb.Len()+n > 254 {
				return "", ErrNameTooLong
			}
			label := d.data[off+1 : off+1+n]
			// The wire format technically allows any byte inside a
			// label, but this codec's text form separates labels with
			// dots, so a label containing '.' (or NUL) cannot round-
			// trip; reject it rather than decode ambiguously.
			for _, c := range label {
				if c == '.' || c == 0 {
					return "", fmt.Errorf("label byte %#x: %w", c, ErrBadLabelByte)
				}
			}
			sb.Write(label)
			off += 1 + n
		}
	}
}
