package dnsmsg

import (
	"reflect"
	"testing"
)

// FuzzUnpack exercises the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must survive a pack/unpack round trip
// (canonical re-encoding).
func FuzzUnpack(f *testing.F) {
	// Seed corpus: a real query, a real compressed response, garbage.
	q, _ := NewQuery(1, "foo.net", TypeMX).Pack()
	f.Add(q)
	resp := NewQuery(2, "foo.net", TypeMX).Reply()
	resp.Answers = append(resp.Answers,
		RR{Name: "foo.net", Type: TypeMX, Class: ClassINET, TTL: 300,
			Data: MX{Preference: 0, Host: "smtp.foo.net"}})
	wire, _ := resp.Pack()
	f.Add(wire)
	f.Add([]byte{0xC0, 0x0C})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		// Accepted messages must re-encode and re-decode to the same
		// structure (idempotent canonical form).
		re, err := m.Pack()
		if err != nil {
			// Unpack can accept raw rdata whose text form we cannot
			// re-emit, but packing Raw bytes always works; any other
			// failure is a bug.
			t.Fatalf("repack failed for accepted message: %v", err)
		}
		m2, err := Unpack(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("canonical form unstable:\n%+v\nvs\n%+v", m, m2)
		}
	})
}
