package smtpclient

import (
	"fmt"
	"testing"

	"repro/internal/smtpproto"
)

func batchMessages(n int) []Message {
	msgs := make([]Message, n)
	for i := range msgs {
		msgs[i] = Message{
			HeloName: "sender.example",
			From:     fmt.Sprintf("alice%d@sender.example", i),
			To:       []string{fmt.Sprintf("user%d@foo.net", i)},
			Data:     []byte(fmt.Sprintf("Subject: batch %d\r\n\r\nbody\r\n", i)),
		}
	}
	return msgs
}

func TestDeliverBatchSingleConnection(t *testing.T) {
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	srv := w.startMX(t, "10.0.0.1", nil)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}

	receipts := DeliverBatch(w.resolver, dialer, "foo.net", batchMessages(5))
	for _, r := range receipts {
		if r.Outcome != Delivered {
			t.Fatalf("message %d = %+v", r.Index, r)
		}
		if r.Host != "smtp.foo.net" {
			t.Fatalf("message %d host = %q", r.Index, r.Host)
		}
	}
	if w.inboxSize() != 5 {
		t.Fatalf("inbox = %d", w.inboxSize())
	}
	// The whole batch used ONE connection — that is the point.
	if got := srv.Stats().Connections; got != 1 {
		t.Fatalf("connections = %d, want 1", got)
	}
}

func TestDeliverBatchMixedOutcomes(t *testing.T) {
	hook := func(ip, sender, rcpt string) *smtpproto.Reply {
		switch rcpt {
		case "user1@foo.net":
			r := smtpproto.NewReply(451, "4.7.1", "Greylisted")
			return &r
		case "user3@foo.net":
			r := smtpproto.NewReply(550, "5.1.1", "No such user")
			return &r
		}
		return nil
	}
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	w.startMX(t, "10.0.0.1", hook)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}

	receipts := DeliverBatch(w.resolver, dialer, "foo.net", batchMessages(5))
	want := []Outcome{Delivered, TransientFailure, Delivered, PermanentFailure, Delivered}
	for i, r := range receipts {
		if r.Outcome != want[i] {
			t.Fatalf("message %d = %v, want %v (receipts %+v)", i, r.Outcome, want[i], receipts)
		}
	}
	// Deferred/rejected messages must not poison the rest of the batch.
	if w.inboxSize() != 3 {
		t.Fatalf("inbox = %d", w.inboxSize())
	}
}

func TestDeliverBatchEmpty(t *testing.T) {
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}
	if got := DeliverBatch(w.resolver, dialer, "foo.net", nil); len(got) != 0 {
		t.Fatalf("receipts = %v", got)
	}
}

func TestDeliverBatchUnknownDomain(t *testing.T) {
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}
	receipts := DeliverBatch(w.resolver, dialer, "nope.example", batchMessages(2))
	for _, r := range receipts {
		if r.Outcome != Unreachable || r.LastError == nil {
			t.Fatalf("receipt = %+v", r)
		}
	}
}

func TestDeliverBatchAllDown(t *testing.T) {
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	// Nothing listening.
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}
	receipts := DeliverBatch(w.resolver, dialer, "foo.net", batchMessages(2))
	for _, r := range receipts {
		if r.Outcome != Unreachable {
			t.Fatalf("receipt = %+v", r)
		}
	}
}

func TestDeliverBatchWalksToSecondary(t *testing.T) {
	// Nolisting layout: the batch walks past the dead primary once and
	// then delivers everything via the secondary on one connection.
	w := buildWorld(t, []string{"10.0.0.1", "10.0.0.2"}, nil)
	srv := w.startMX(t, "10.0.0.2", nil)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}

	receipts := DeliverBatch(w.resolver, dialer, "foo.net", batchMessages(4))
	for _, r := range receipts {
		if r.Outcome != Delivered || r.Host != "smtp1.foo.net" {
			t.Fatalf("receipt = %+v", r)
		}
	}
	if got := srv.Stats().Connections; got != 1 {
		t.Fatalf("connections = %d, want 1", got)
	}
}
