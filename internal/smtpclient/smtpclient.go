// Package smtpclient implements an SMTP client and the RFC 5321 delivery
// procedure used by every *benign* sender in the reproduction: resolve the
// recipient domain's MX records, try each exchanger in priority order, and
// classify the outcome as delivered, transient failure (requeue and retry
// later — the behaviour greylisting relies on) or permanent failure
// (bounce).
//
// The spam-bot models in package botnet reuse the low-level Client but
// deliberately violate the MX-walking procedure in the four ways
// Section IV-B of the paper catalogues.
package smtpclient

import (
	"bufio"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"

	"repro/internal/dnsresolver"
	"repro/internal/netsim"
	"repro/internal/smtpproto"
	"repro/internal/trace"
)

// SMTPPort is the canonical SMTP port.
const SMTPPort = "25"

// Dialer opens connections to "ip:port" addresses. Implementations exist
// for the real network and for netsim.
type Dialer interface {
	Dial(raddr string) (net.Conn, error)
}

// NetDialer dials over the real network. The zero value is ready to use.
type NetDialer struct{}

var _ Dialer = NetDialer{}

// Dial implements Dialer.
func (NetDialer) Dial(raddr string) (net.Conn, error) {
	return net.Dial("tcp", raddr)
}

// SimDialer dials over a netsim.Network from a fixed source IP, assigning
// ephemeral source ports. It is how every simulated sender — benign or
// bot — gets its client address, which is in turn the first element of the
// greylisting triplet.
type SimDialer struct {
	// Net is the simulated network.
	Net *netsim.Network
	// LocalIP is the sender's address.
	LocalIP string

	port atomic.Uint32
}

var _ Dialer = (*SimDialer)(nil)

// Dial implements Dialer.
func (d *SimDialer) Dial(raddr string) (net.Conn, error) {
	port := 10000 + d.port.Add(1)%50000
	return d.Net.Dial(fmt.Sprintf("%s:%d", d.LocalIP, port), raddr)
}

// TraceDialer is implemented by dialers that can attach the caller's
// trace to the connections they open, so the accepting server records
// into the same trace (netsim-backed dialers).
type TraceDialer interface {
	Dialer
	DialTrace(raddr string, tr *trace.Trace) (net.Conn, error)
}

var _ TraceDialer = (*SimDialer)(nil)

// DialTrace implements TraceDialer: the dial outcome is recorded into
// tr and the simulated connection carries it across the network.
func (d *SimDialer) DialTrace(raddr string, tr *trace.Trace) (net.Conn, error) {
	port := 10000 + d.port.Add(1)%50000
	return d.Net.DialTrace(fmt.Sprintf("%s:%d", d.LocalIP, port), raddr, tr)
}

// dialTraced routes a dial through the dialer's traced path when it
// has one; otherwise the plain dial is recorded client-side only.
func dialTraced(dialer Dialer, raddr string, tr *trace.Trace) (net.Conn, error) {
	if td, ok := dialer.(TraceDialer); ok && tr != nil {
		return td.DialTrace(raddr, tr)
	}
	conn, err := dialer.Dial(raddr)
	tr.Dial(raddr, err)
	return conn, err
}

// Error is a non-2xx SMTP reply surfaced as an error.
type Error struct {
	// Cmd is the command that elicited the reply ("connect" for the
	// banner).
	Cmd string
	// Reply is the server's reply.
	Reply smtpproto.Reply
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("smtpclient: %s: %03d %s", e.Cmd, e.Reply.Code, strings.Join(e.Reply.Lines, " / "))
}

// Temporary reports whether the failure is transient (4xx), i.e. the
// delivery should be retried later. A greylisting deferral is exactly a
// temporary Error with code 451.
func (e *Error) Temporary() bool { return e.Reply.Transient() }

// Client is a connected SMTP client session. A Client outlives any one
// connection: Rebind attaches it to a fresh conn while reusing the
// buffered reader/writer and the reply-line scratch, so a load
// generator's conn pool does not pay two 4 KiB bufio allocations per
// redial.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// lineBuf is the reusable reply-line scratch for ParseReplyBuf; it
	// survives across commands and rebinds.
	lineBuf []byte
	// Extensions holds the EHLO keywords announced by the server
	// (upper-cased keyword -> parameter string).
	Extensions map[string]string
}

// NewClient wraps an established connection and consumes the 220 banner.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{}
	if err := c.Rebind(conn); err != nil {
		return nil, err
	}
	return c, nil
}

// Rebind attaches the client to a freshly dialed connection and
// consumes its 220 banner, reusing the client's buffers. The previous
// connection, if any, must already be closed (Quit or Close). On a
// banner error the new connection is closed and the client may be
// rebound again.
func (c *Client) Rebind(conn net.Conn) error {
	c.conn = conn
	if c.br == nil {
		c.br = bufio.NewReader(conn)
		c.bw = bufio.NewWriter(conn)
	} else {
		c.br.Reset(conn)
		c.bw.Reset(conn)
	}
	c.Extensions = nil
	banner, err := c.readReply()
	if err != nil {
		conn.Close()
		return fmt.Errorf("smtpclient: reading banner: %w", err)
	}
	if !banner.Positive() {
		conn.Close()
		return &Error{Cmd: "connect", Reply: banner}
	}
	return nil
}

// readReply parses one server reply through the client's reusable
// line scratch.
func (c *Client) readReply() (smtpproto.Reply, error) {
	reply, buf, err := smtpproto.ParseReplyBuf(c.br, c.lineBuf)
	c.lineBuf = buf
	return reply, err
}

// Dial connects to addr via dialer and consumes the banner.
func Dial(dialer Dialer, addr string) (*Client, error) {
	conn, err := dialer.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("smtpclient: dial %s: %w", addr, err)
	}
	return NewClient(conn)
}

// DialTrace is Dial with the caller's trace attached to the
// connection (see TraceDialer). A nil trace behaves exactly like
// Dial.
func DialTrace(dialer Dialer, addr string, tr *trace.Trace) (*Client, error) {
	conn, err := dialTraced(dialer, addr, tr)
	if err != nil {
		return nil, fmt.Errorf("smtpclient: dial %s: %w", addr, err)
	}
	return NewClient(conn)
}

// cmd sends one command line and parses the reply. The CRLF is written
// separately so the command string is not re-concatenated per call.
func (c *Client) cmd(verb, line string) (smtpproto.Reply, error) {
	if _, err := c.bw.WriteString(line); err != nil {
		return smtpproto.Reply{}, fmt.Errorf("smtpclient: send %s: %w", verb, err)
	}
	if _, err := c.bw.WriteString("\r\n"); err != nil {
		return smtpproto.Reply{}, fmt.Errorf("smtpclient: send %s: %w", verb, err)
	}
	if err := c.bw.Flush(); err != nil {
		return smtpproto.Reply{}, fmt.Errorf("smtpclient: send %s: %w", verb, err)
	}
	reply, err := c.readReply()
	if err != nil {
		return smtpproto.Reply{}, fmt.Errorf("smtpclient: reply to %s: %w", verb, err)
	}
	return reply, nil
}

// expect runs cmd and converts non-matching replies to *Error.
func (c *Client) expect(verb, line string, okClass int) (smtpproto.Reply, error) {
	reply, err := c.cmd(verb, line)
	if err != nil {
		return reply, err
	}
	if reply.Code/100 != okClass {
		return reply, &Error{Cmd: verb, Reply: reply}
	}
	return reply, nil
}

// Hello greets the server with EHLO, falling back to HELO for servers
// that reject it. The announced extensions are recorded.
func (c *Client) Hello(heloName string) error {
	reply, err := c.cmd(smtpproto.VerbEHLO, "EHLO "+heloName)
	if err != nil {
		return err
	}
	if reply.Positive() {
		c.Extensions = parseExtensions(reply)
		return nil
	}
	if _, err := c.expect(smtpproto.VerbHELO, "HELO "+heloName, 2); err != nil {
		return err
	}
	c.Extensions = map[string]string{}
	return nil
}

// Helo greets with plain HELO only — old-style clients and several of the
// bot dialects do this.
func (c *Client) Helo(heloName string) error {
	_, err := c.expect(smtpproto.VerbHELO, "HELO "+heloName, 2)
	return err
}

func parseExtensions(reply smtpproto.Reply) map[string]string {
	ext := make(map[string]string)
	for i, line := range reply.Lines {
		if i == 0 {
			continue // greeting line
		}
		keyword, param, _ := strings.Cut(line, " ")
		ext[strings.ToUpper(keyword)] = param
	}
	return ext
}

// Mail sends MAIL FROM. An empty from sends the null reverse-path.
func (c *Client) Mail(from string) error {
	_, err := c.expect(smtpproto.VerbMAIL, "MAIL FROM:<"+from+">", 2)
	return err
}

// Rcpt sends RCPT TO.
func (c *Client) Rcpt(to string) error {
	_, err := c.expect(smtpproto.VerbRCPT, "RCPT TO:<"+to+">", 2)
	return err
}

// Data sends the DATA command and the dot-stuffed payload.
func (c *Client) Data(payload []byte) error {
	if err := c.DataStart(); err != nil {
		return err
	}
	return c.DataEnd(payload)
}

// DataStart sends DATA and waits for the 354 go-ahead. Callers that
// time SMTP verbs individually (the soak harness) use the
// DataStart/DataEnd pair; everyone else uses Data.
func (c *Client) DataStart() error {
	_, err := c.expect(smtpproto.VerbDATA, "DATA", 3)
	return err
}

// DataEnd streams the dot-stuffed payload, terminates it and reads the
// server's verdict.
func (c *Client) DataEnd(payload []byte) error {
	if err := smtpproto.WriteDotStuffed(c.bw, payload); err != nil {
		return fmt.Errorf("smtpclient: sending payload: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("smtpclient: sending payload: %w", err)
	}
	reply, err := c.readReply()
	if err != nil {
		return fmt.Errorf("smtpclient: reply to payload: %w", err)
	}
	if !reply.Positive() {
		return &Error{Cmd: "DATA-END", Reply: reply}
	}
	return nil
}

// readCode reads one reply but surfaces only its code, through the
// reusable line scratch — the allocation-free twin of readReply.
func (c *Client) readCode() (int, error) {
	code, buf, err := smtpproto.ReadReplyCode(c.br, c.lineBuf)
	c.lineBuf = buf
	return code, err
}

// MailRcptPipelined issues one envelope as a single pipelined write
// (RFC 2920): an optional leading RSET (clearing whatever the previous
// transaction on this connection left behind), MAIL FROM, and the whole
// RCPT volley, then reads every reply. Only reply codes are surfaced —
// rcptCodes[i] answers rcpts[i], appended into codes[:0] so a steady
// caller allocates nothing. An error means the session is broken
// mid-dialog and the connection must be abandoned; SMTP-level refusals
// are expressed through the codes, not the error.
func (c *Client) MailRcptPipelined(from string, rcpts []string, codes []int, rset bool) (mailCode int, rcptCodes []int, err error) {
	if rset {
		if _, err := c.bw.WriteString("RSET\r\n"); err != nil {
			return 0, nil, fmt.Errorf("smtpclient: send RSET: %w", err)
		}
	}
	if _, err := c.bw.WriteString("MAIL FROM:<"); err != nil {
		return 0, nil, fmt.Errorf("smtpclient: send MAIL: %w", err)
	}
	c.bw.WriteString(from)
	c.bw.WriteString(">\r\n")
	for _, to := range rcpts {
		c.bw.WriteString("RCPT TO:<")
		c.bw.WriteString(to)
		if _, err := c.bw.WriteString(">\r\n"); err != nil {
			return 0, nil, fmt.Errorf("smtpclient: send RCPT: %w", err)
		}
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, fmt.Errorf("smtpclient: flush pipeline: %w", err)
	}
	if rset {
		if _, err := c.readCode(); err != nil {
			return 0, nil, fmt.Errorf("smtpclient: reply to RSET: %w", err)
		}
	}
	mailCode, err = c.readCode()
	if err != nil {
		return 0, nil, fmt.Errorf("smtpclient: reply to MAIL: %w", err)
	}
	rcptCodes = codes[:0]
	for range rcpts {
		code, err := c.readCode()
		if err != nil {
			return mailCode, rcptCodes, fmt.Errorf("smtpclient: reply to RCPT: %w", err)
		}
		rcptCodes = append(rcptCodes, code)
	}
	return mailCode, rcptCodes, nil
}

// QueueMailRcpts writes an optional RSET plus one MAIL FROM/RCPT TO
// envelope into the output buffer WITHOUT flushing, so several
// RSET-separated envelopes can ride one TCP segment — RFC 2920
// pipelining applied across transaction boundaries, the way a
// high-rate client drains a backlog through a pooled connection. It
// returns the number of reply codes the queued volley will produce
// (RSET + MAIL + one per recipient). Finish the burst with FlushCodes.
func (c *Client) QueueMailRcpts(from string, rcpts []string, rset bool) (int, error) {
	n := 1 + len(rcpts)
	if rset {
		n++
		if _, err := c.bw.WriteString("RSET\r\n"); err != nil {
			return 0, fmt.Errorf("smtpclient: queue RSET: %w", err)
		}
	}
	if _, err := c.bw.WriteString("MAIL FROM:<"); err != nil {
		return 0, fmt.Errorf("smtpclient: queue MAIL: %w", err)
	}
	c.bw.WriteString(from)
	c.bw.WriteString(">\r\n")
	for _, to := range rcpts {
		c.bw.WriteString("RCPT TO:<")
		c.bw.WriteString(to)
		if _, err := c.bw.WriteString(">\r\n"); err != nil {
			return 0, fmt.Errorf("smtpclient: queue RCPT: %w", err)
		}
	}
	return n, nil
}

// FlushCodes flushes every queued volley in one write and reads back n
// reply codes, appended into codes[:0] in command order.
func (c *Client) FlushCodes(n int, codes []int) ([]int, error) {
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("smtpclient: flush burst: %w", err)
	}
	codes = codes[:0]
	for i := 0; i < n; i++ {
		code, err := c.readCode()
		if err != nil {
			return codes, fmt.Errorf("smtpclient: burst reply %d/%d: %w", i+1, n, err)
		}
		codes = append(codes, code)
	}
	return codes, nil
}

// StartTLS upgrades the connection to TLS (RFC 3207). On success the
// protocol state is reset server-side; the caller MUST greet again with
// Hello before sending mail.
func (c *Client) StartTLS(cfg *tls.Config) error {
	if _, err := c.expect("STARTTLS", "STARTTLS", 2); err != nil {
		return err
	}
	tlsConn := tls.Client(c.conn, cfg)
	if err := tlsConn.Handshake(); err != nil {
		return fmt.Errorf("smtpclient: TLS handshake: %w", err)
	}
	c.conn = tlsConn
	c.br.Reset(tlsConn)
	c.bw.Reset(tlsConn)
	c.Extensions = nil
	return nil
}

// TLSActive reports whether the connection has been upgraded.
func (c *Client) TLSActive() bool {
	_, ok := c.conn.(*tls.Conn)
	return ok
}

// Reset sends RSET.
func (c *Client) Reset() error {
	_, err := c.expect(smtpproto.VerbRSET, "RSET", 2)
	return err
}

// Quit sends QUIT and closes the connection.
func (c *Client) Quit() error {
	_, err := c.cmd(smtpproto.VerbQUIT, "QUIT")
	c.conn.Close()
	return err
}

// Close closes the connection without QUIT — the abrupt disconnect many
// bots perform.
func (c *Client) Close() error { return c.conn.Close() }

// Message is one email to deliver.
type Message struct {
	// HeloName is the name announced at HELO/EHLO.
	HeloName string
	// From is the envelope sender.
	From string
	// To are the envelope recipients (all in the same domain for
	// DeliverMX).
	To []string
	// Data is the message content.
	Data []byte
}

// Outcome classifies a delivery attempt.
type Outcome int

// Outcomes.
const (
	// Delivered: at least one recipient accepted and message sent.
	Delivered Outcome = iota + 1
	// TransientFailure: a 4xx at some stage; retry later (greylisting
	// deferrals land here).
	TransientFailure
	// PermanentFailure: a 5xx; bounce, do not retry.
	PermanentFailure
	// Unreachable: no MX host could be contacted at all.
	Unreachable
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case TransientFailure:
		return "transient-failure"
	case PermanentFailure:
		return "permanent-failure"
	case Unreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Receipt reports the result of a DeliverMX call.
type Receipt struct {
	Outcome Outcome
	// Host is the MX host that produced the final outcome ("" when
	// nothing was reachable).
	Host string
	// Addr is the address dialed for the final outcome.
	Addr string
	// HostsTried counts MX addresses contacted.
	HostsTried int
	// LastError is the error behind a non-Delivered outcome.
	LastError error
}

// DeliverMX performs the RFC 5321 client-side delivery procedure for
// domain: look up its MX records, then try each exchanger in priority
// order (this is the step that defeats nolisting: the dead primary is
// skipped and the working secondary gets the mail). A transient error on
// one host moves on to the next; a permanent error aborts with a bounce.
func DeliverMX(res *dnsresolver.Resolver, dialer Dialer, domain string, msg Message) Receipt {
	return DeliverMXTrace(res, dialer, domain, msg, nil)
}

// DeliverMXTrace is DeliverMX with the whole walk recorded into tr:
// the MX lookup, every dial (including the refused primary that a
// nolisting defense presents), and the final outcome of each
// contacted host. A nil trace makes it identical to DeliverMX.
func DeliverMXTrace(res *dnsresolver.Resolver, dialer Dialer, domain string, msg Message, tr *trace.Trace) Receipt {
	hosts, err := res.LookupMXTrace(domain, tr)
	if err != nil {
		return Receipt{Outcome: Unreachable, LastError: fmt.Errorf("resolving %s: %w", domain, err)}
	}
	var lastTransient *Receipt
	tried := 0
	for _, h := range hosts {
		for _, addr := range h.Addrs {
			tried++
			full := net.JoinHostPort(addr, SMTPPort)
			outcome, err := attemptHostTrace(dialer, full, msg, tr)
			switch outcome {
			case Delivered:
				return Receipt{Outcome: Delivered, Host: h.Host, Addr: full, HostsTried: tried}
			case PermanentFailure:
				return Receipt{Outcome: PermanentFailure, Host: h.Host, Addr: full, HostsTried: tried, LastError: err}
			case TransientFailure:
				lastTransient = &Receipt{Outcome: TransientFailure, Host: h.Host, Addr: full, HostsTried: tried, LastError: err}
			case Unreachable:
				// connection failed; try next address/host
			}
		}
	}
	if lastTransient != nil {
		lastTransient.HostsTried = tried
		return *lastTransient
	}
	return Receipt{Outcome: Unreachable, HostsTried: tried,
		LastError: fmt.Errorf("no reachable MX for %s", domain)}
}

// attemptHostTrace runs one complete SMTP transaction against addr.
// SMTP verb events are recorded by the server side of a simulated
// connection (which shares tr via the carrier), so the client only
// records the dial here — no double counting.
func attemptHostTrace(dialer Dialer, addr string, msg Message, tr *trace.Trace) (Outcome, error) {
	client, err := DialTrace(dialer, addr, tr)
	if err != nil {
		var smtpErr *Error
		if errors.As(err, &smtpErr) {
			if smtpErr.Temporary() {
				return TransientFailure, err
			}
			return PermanentFailure, err
		}
		return Unreachable, err
	}
	defer client.Close()

	classify := func(err error) (Outcome, error) {
		var smtpErr *Error
		if errors.As(err, &smtpErr) {
			if smtpErr.Temporary() {
				return TransientFailure, err
			}
			return PermanentFailure, err
		}
		return Unreachable, err
	}

	if err := client.Hello(msg.HeloName); err != nil {
		return classify(err)
	}
	if err := client.Mail(msg.From); err != nil {
		return classify(err)
	}
	accepted := 0
	var rcptErr error
	for _, to := range msg.To {
		if err := client.Rcpt(to); err != nil {
			rcptErr = err
			continue
		}
		accepted++
	}
	if accepted == 0 {
		return classify(rcptErr)
	}
	if err := client.Data(msg.Data); err != nil {
		return classify(err)
	}
	client.Quit()
	return Delivered, nil
}

// BatchReceipt pairs a message index with its delivery outcome.
type BatchReceipt struct {
	// Index is the message's position in the DeliverBatch input.
	Index int
	// Outcome classifies the result for this message.
	Outcome Outcome
	// Host is the MX host that produced the outcome.
	Host string
	// LastError is the error behind a non-Delivered outcome.
	LastError error
}

// DeliverBatch delivers several messages for one domain over a single
// SMTP connection, the way real MTAs drain a per-domain queue (RFC 5321
// explicitly allows multiple transactions per session). The MX walk is
// performed once; each message is then one MAIL/RCPT/DATA transaction,
// with RSET recovering from per-message failures. If the connection dies
// mid-batch, the remaining messages are reported Unreachable so the
// caller can requeue them.
func DeliverBatch(res *dnsresolver.Resolver, dialer Dialer, domain string, msgs []Message) []BatchReceipt {
	receipts := make([]BatchReceipt, len(msgs))
	for i := range receipts {
		receipts[i] = BatchReceipt{Index: i, Outcome: Unreachable}
	}
	if len(msgs) == 0 {
		return receipts
	}
	hosts, err := res.LookupMX(domain)
	if err != nil {
		for i := range receipts {
			receipts[i].LastError = err
		}
		return receipts
	}

	for _, h := range hosts {
		for _, addr := range h.Addrs {
			full := net.JoinHostPort(addr, SMTPPort)
			client, err := Dial(dialer, full)
			if err != nil {
				continue // next address / host
			}
			if err := client.Hello(msgs[0].HeloName); err != nil {
				client.Close()
				continue
			}
			done := runBatch(client, h.Host, msgs, receipts)
			client.Quit()
			if done {
				return receipts
			}
			// Connection died mid-batch; remaining messages stay
			// Unreachable for the caller to requeue.
			return receipts
		}
	}
	return receipts
}

// runBatch performs one transaction per message on an established
// session. It reports false if the session broke mid-way.
func runBatch(client *Client, host string, msgs []Message, receipts []BatchReceipt) bool {
	classify := func(i int, err error) bool {
		receipts[i].Host = host
		receipts[i].LastError = err
		var smtpErr *Error
		if errors.As(err, &smtpErr) {
			if smtpErr.Temporary() {
				receipts[i].Outcome = TransientFailure
			} else {
				receipts[i].Outcome = PermanentFailure
			}
			return true // session still usable after RSET
		}
		receipts[i].Outcome = Unreachable
		return false // I/O error: session dead
	}

	for i, msg := range msgs {
		if err := client.Mail(msg.From); err != nil {
			if !classify(i, err) {
				return false
			}
			client.Reset()
			continue
		}
		accepted := 0
		var rcptErr error
		for _, to := range msg.To {
			if err := client.Rcpt(to); err != nil {
				rcptErr = err
				var smtpErr *Error
				if !errors.As(err, &smtpErr) {
					classify(i, err)
					return false
				}
				continue
			}
			accepted++
		}
		if accepted == 0 {
			classify(i, rcptErr)
			client.Reset()
			continue
		}
		if err := client.Data(msg.Data); err != nil {
			if !classify(i, err) {
				return false
			}
			client.Reset()
			continue
		}
		receipts[i].Outcome = Delivered
		receipts[i].Host = host
		receipts[i].LastError = nil
	}
	return true
}
