package smtpclient

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/smtpproto"
	"repro/internal/smtpserver"
)

// world is a miniature Internet: one domain foo.net with a primary and a
// secondary MX, DNS, and an optional greylisting-style RCPT hook.
type world struct {
	net      *netsim.Network
	resolver *dnsresolver.Resolver
	inbox    []*smtpserver.Envelope
	mu       sync.Mutex
}

// buildWorld starts SMTP servers on the given MX IPs. rcptHook may be nil.
func buildWorld(t *testing.T, mxIPs []string, rcptHook func(ip, sender, rcpt string) *smtpproto.Reply) *world {
	t.Helper()
	w := &world{net: netsim.New()}

	zone := dnsserver.NewZone("foo.net")
	prefs := []uint16{0, 15, 30}
	names := []string{"smtp.foo.net", "smtp1.foo.net", "smtp2.foo.net"}
	for i, ip := range mxIPs {
		zone.MustAdd(dnsmsg.RR{Name: "foo.net", Type: dnsmsg.TypeMX, TTL: 300,
			Data: dnsmsg.MX{Preference: prefs[i], Host: names[i]}})
		zone.MustAdd(dnsmsg.RR{Name: names[i], Type: dnsmsg.TypeA, TTL: 300,
			Data: dnsmsg.MustIPv4(ip)})
	}
	dns := dnsserver.New()
	dns.AddZone(zone)
	w.resolver = dnsresolver.New(dnsresolver.Direct(dns), simtime.NewSim(simtime.Epoch))
	return w
}

// startMX binds an SMTP server to ip:25 recording deliveries in the inbox.
func (w *world) startMX(t *testing.T, ip string, rcptHook func(ip, sender, rcpt string) *smtpproto.Reply) *smtpserver.Server {
	t.Helper()
	l, err := w.net.Listen(ip + ":25")
	if err != nil {
		t.Fatal(err)
	}
	srv := smtpserver.New(smtpserver.Config{
		Hostname: "mx." + ip,
		Hooks: smtpserver.Hooks{
			OnRcpt: rcptHook,
			OnMessage: func(e *smtpserver.Envelope) *smtpproto.Reply {
				w.mu.Lock()
				defer w.mu.Unlock()
				w.inbox = append(w.inbox, e)
				return nil
			},
		},
	})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func (w *world) inboxSize() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.inbox)
}

func testMessage() Message {
	return Message{
		HeloName: "sender.example",
		From:     "alice@sender.example",
		To:       []string{"bob@foo.net"},
		Data:     []byte("Subject: test\r\n\r\nhello\r\n"),
	}
}

func TestClientFullTransaction(t *testing.T) {
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	w.startMX(t, "10.0.0.1", nil)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}

	c, err := Dial(dialer, "10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hello("sender.example"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Extensions["PIPELINING"]; !ok {
		t.Errorf("extensions = %v, missing PIPELINING", c.Extensions)
	}
	if err := c.Mail("alice@sender.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("bob@foo.net"); err != nil {
		t.Fatal(err)
	}
	if err := c.Data([]byte("Subject: x\r\n\r\nbody\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
	if w.inboxSize() != 1 {
		t.Fatalf("inbox = %d", w.inboxSize())
	}
}

func TestClientResetAndClose(t *testing.T) {
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	w.startMX(t, "10.0.0.1", nil)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}
	c, err := Dial(dialer, "10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hello("x.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("a@x.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestErrorTemporaryClassification(t *testing.T) {
	deferReply := smtpproto.NewReply(451, "4.7.1", "Greylisted")
	rejectReply := smtpproto.NewReply(550, "5.1.1", "No such user")
	if !(&Error{Cmd: "RCPT", Reply: deferReply}).Temporary() {
		t.Error("451 not temporary")
	}
	if (&Error{Cmd: "RCPT", Reply: rejectReply}).Temporary() {
		t.Error("550 temporary")
	}
	e := &Error{Cmd: "RCPT", Reply: rejectReply}
	if !strings.Contains(e.Error(), "550") {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestDeliverMXPrimary(t *testing.T) {
	w := buildWorld(t, []string{"10.0.0.1", "10.0.0.2"}, nil)
	w.startMX(t, "10.0.0.1", nil)
	w.startMX(t, "10.0.0.2", nil)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}

	r := DeliverMX(w.resolver, dialer, "foo.net", testMessage())
	if r.Outcome != Delivered {
		t.Fatalf("receipt = %+v", r)
	}
	if r.Host != "smtp.foo.net" || r.HostsTried != 1 {
		t.Fatalf("receipt = %+v, want primary on first try", r)
	}
}

func TestDeliverMXWalksToSecondaryOnNolisting(t *testing.T) {
	// Nolisting layout: the primary's A record exists but port 25 is
	// closed. A compliant sender must fall through to the secondary.
	w := buildWorld(t, []string{"10.0.0.1", "10.0.0.2"}, nil)
	// No listener on 10.0.0.1 — that's the nolisted primary.
	w.startMX(t, "10.0.0.2", nil)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}

	r := DeliverMX(w.resolver, dialer, "foo.net", testMessage())
	if r.Outcome != Delivered {
		t.Fatalf("receipt = %+v", r)
	}
	if r.Host != "smtp1.foo.net" || r.HostsTried != 2 {
		t.Fatalf("receipt = %+v, want secondary after trying primary", r)
	}
	if w.inboxSize() != 1 {
		t.Fatalf("inbox = %d", w.inboxSize())
	}
}

func TestDeliverMXTransientOnGreylisting(t *testing.T) {
	greylist := func(ip, sender, rcpt string) *smtpproto.Reply {
		r := smtpproto.NewReply(451, "4.7.1", "Greylisted")
		return &r
	}
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	w.startMX(t, "10.0.0.1", greylist)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}

	r := DeliverMX(w.resolver, dialer, "foo.net", testMessage())
	if r.Outcome != TransientFailure {
		t.Fatalf("receipt = %+v, want transient", r)
	}
	var smtpErr *Error
	if !errors.As(r.LastError, &smtpErr) || !smtpErr.Temporary() {
		t.Fatalf("LastError = %v", r.LastError)
	}
	if w.inboxSize() != 0 {
		t.Fatal("greylisted message delivered")
	}
}

func TestDeliverMXPermanentStopsWalk(t *testing.T) {
	reject := func(ip, sender, rcpt string) *smtpproto.Reply {
		r := smtpproto.NewReply(550, "5.1.1", "No such user")
		return &r
	}
	w := buildWorld(t, []string{"10.0.0.1", "10.0.0.2"}, nil)
	w.startMX(t, "10.0.0.1", reject)
	secondary := w.startMX(t, "10.0.0.2", nil)

	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}
	r := DeliverMX(w.resolver, dialer, "foo.net", testMessage())
	if r.Outcome != PermanentFailure {
		t.Fatalf("receipt = %+v, want permanent", r)
	}
	if secondary.Stats().Connections != 0 {
		t.Fatal("permanent failure should not fall through to secondary")
	}
}

func TestDeliverMXAllDown(t *testing.T) {
	w := buildWorld(t, []string{"10.0.0.1", "10.0.0.2"}, nil)
	// Nothing listening anywhere.
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}
	r := DeliverMX(w.resolver, dialer, "foo.net", testMessage())
	if r.Outcome != Unreachable {
		t.Fatalf("receipt = %+v, want unreachable", r)
	}
	if r.HostsTried != 2 {
		t.Fatalf("HostsTried = %d, want 2", r.HostsTried)
	}
}

func TestDeliverMXUnknownDomain(t *testing.T) {
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}
	r := DeliverMX(w.resolver, dialer, "nonexistent.example", testMessage())
	if r.Outcome != Unreachable {
		t.Fatalf("receipt = %+v", r)
	}
}

func TestDeliverMXPartialRcptStillDelivers(t *testing.T) {
	oneGood := func(ip, sender, rcpt string) *smtpproto.Reply {
		if rcpt == "bad@foo.net" {
			r := smtpproto.NewReply(550, "5.1.1", "No such user")
			return &r
		}
		return nil
	}
	w := buildWorld(t, []string{"10.0.0.1"}, nil)
	w.startMX(t, "10.0.0.1", oneGood)
	dialer := &SimDialer{Net: w.net, LocalIP: "192.0.2.10"}
	msg := testMessage()
	msg.To = []string{"bad@foo.net", "bob@foo.net"}
	r := DeliverMX(w.resolver, dialer, "foo.net", msg)
	if r.Outcome != Delivered {
		t.Fatalf("receipt = %+v", r)
	}
}

func TestHelloFallsBackToHelo(t *testing.T) {
	// A raw server that refuses EHLO but accepts HELO.
	n := netsim.New()
	l, err := n.Listen("10.9.9.9:25")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		conn.Write([]byte("220 old.server ready\r\n"))
		for {
			line, err := smtpproto.ReadCommandLine(br)
			if err != nil {
				return
			}
			switch {
			case strings.HasPrefix(line, "EHLO"):
				conn.Write([]byte("500 5.5.2 EHLO not understood\r\n"))
			case strings.HasPrefix(line, "HELO"):
				conn.Write([]byte("250 old.server\r\n"))
			case strings.HasPrefix(line, "QUIT"):
				conn.Write([]byte("221 bye\r\n"))
				return
			default:
				conn.Write([]byte("250 OK\r\n"))
			}
		}
	}()

	dialer := &SimDialer{Net: n, LocalIP: "192.0.2.10"}
	c, err := Dial(dialer, "10.9.9.9:25")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hello("new.client"); err != nil {
		t.Fatalf("Hello with fallback: %v", err)
	}
	if len(c.Extensions) != 0 {
		t.Fatalf("extensions = %v, want none after HELO fallback", c.Extensions)
	}
	c.Quit()
}

func TestDialRefusedSurfaces(t *testing.T) {
	n := netsim.New()
	dialer := &SimDialer{Net: n, LocalIP: "192.0.2.10"}
	if _, err := Dial(dialer, "10.0.0.1:25"); !errors.Is(err, netsim.ErrConnRefused) {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectingBannerIsError(t *testing.T) {
	n := netsim.New()
	l, err := n.Listen("10.9.9.9:25")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("554 5.7.1 go away\r\n"))
		conn.Close()
	}()
	dialer := &SimDialer{Net: n, LocalIP: "192.0.2.10"}
	_, err = Dial(dialer, "10.9.9.9:25")
	var smtpErr *Error
	if !errors.As(err, &smtpErr) || smtpErr.Reply.Code != 554 {
		t.Fatalf("err = %v", err)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		Delivered: "delivered", TransientFailure: "transient-failure",
		PermanentFailure: "permanent-failure", Unreachable: "unreachable",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}

func TestNetDialerRealTCP(t *testing.T) {
	// NetDialer against a real TCP server socket.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte("220 real.tcp.test ready\r\n"))
		br := bufio.NewReader(conn)
		for {
			line, err := smtpproto.ReadCommandLine(br)
			if err != nil {
				return
			}
			switch {
			case strings.HasPrefix(line, "HELO"):
				conn.Write([]byte("250 hi\r\n"))
			case strings.HasPrefix(line, "QUIT"):
				conn.Write([]byte("221 bye\r\n"))
				return
			default:
				conn.Write([]byte("250 OK\r\n"))
			}
		}
	}()

	c, err := Dial(NetDialer{}, l.Addr().String())
	if err != nil {
		t.Fatalf("Dial over real TCP: %v", err)
	}
	if err := c.Helo("client.example"); err != nil {
		t.Fatalf("Helo: %v", err)
	}
	if err := c.Quit(); err != nil {
		t.Fatalf("Quit: %v", err)
	}
	if _, err := Dial(NetDialer{}, "127.0.0.1:1"); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}
