// Package hdr implements the log-linear HDR-style histogram shared by
// the load generator's latency reports and the observatory's streaming
// sketches: 32 linear sub-buckets per power of two, covering values
// from 1 up to 2^(5+32) ≈ 1.37e11 with a worst-case quantization error
// of 1/32 (~3%) — the same layout family as HdrHistogram, which is
// what makes high percentiles (p99.9) trustworthy without storing raw
// samples. Values above the range are clamped into the top bucket and
// tracked exactly via the max.
//
// The histogram carries no unit of its own: loadgen records
// nanoseconds, the observatory's retry-delay sketches record
// milliseconds (greylist thresholds run minutes to days, far past the
// nanosecond range). Callers pick the unit; Index/Lower/Upper and the
// quantile math are unit-agnostic.
//
// Hist is deliberately NOT thread-safe: each writer owns a private
// instance (a loadgen worker, an observatory snapshot) and readers
// merge them, so the recording path is a couple of integer operations
// with no atomics. Concurrent writers keep per-bucket atomics of their
// own (see internal/obs) and fold into a Hist at read time with
// AddBucket/AddSum/ObserveMax.
package hdr

import "math/bits"

const (
	// SubBits is log2 of the linear sub-buckets per octave.
	SubBits = 5
	// SubCount is the number of linear sub-buckets per octave.
	SubCount = 1 << SubBits
	// Octaves is the number of power-of-two ranges above the linear
	// region.
	Octaves = 33
	// Buckets is the total bucket count.
	Buckets = SubCount + Octaves*SubCount
)

// RelativeError is the worst-case quantization error of a bucket edge
// relative to the true value: one linear sub-bucket per octave, 1/32.
const RelativeError = 1.0 / SubCount

// Index returns the bucket index for value v (negative values clamp
// to bucket 0, values beyond the range clamp to the top bucket).
func Index(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < SubCount {
		return int(u)
	}
	e := bits.Len64(u) - 1 // e >= SubBits
	if e-SubBits >= Octaves {
		return Buckets - 1
	}
	sub := (u >> (uint(e) - SubBits)) & (SubCount - 1)
	return SubCount + (e-SubBits)*SubCount + int(sub)
}

// Lower returns the inclusive lower bound of bucket i.
func Lower(i int) int64 {
	if i < SubCount {
		return int64(i)
	}
	i -= SubCount
	e := i/SubCount + SubBits
	sub := i % SubCount
	return int64(1)<<uint(e) + int64(sub)<<(uint(e)-SubBits)
}

// Upper returns the exclusive upper bound of bucket i.
func Upper(i int) int64 {
	if i < SubCount {
		return int64(i) + 1
	}
	j := i - SubCount
	e := j/SubCount + SubBits
	return Lower(i) + int64(1)<<(uint(e)-SubBits)
}

// Hist is a single-writer log-linear histogram.
type Hist struct {
	counts [Buckets]uint64
	count  uint64
	sum    int64
	max    int64
}

// Record adds one observation.
func (h *Hist) Record(v int64) {
	h.counts[Index(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// AddBucket folds n pre-bucketed observations into bucket i — the
// fold-in path for concurrent recorders that keep per-bucket atomics
// and convert to a Hist at read time. The caller accounts for the sum
// and max separately via AddSum and ObserveMax.
func (h *Hist) AddBucket(i int, n uint64) {
	if i < 0 || i >= Buckets || n == 0 {
		return
	}
	h.counts[i] += n
	h.count += n
}

// AddSum folds an externally accumulated sum of observations into h.
func (h *Hist) AddSum(sum int64) { h.sum += sum }

// ObserveMax raises h's exact maximum to at least v.
func (h *Hist) ObserveMax(v int64) {
	if v > h.max {
		h.max = v
	}
}

// BucketCount returns the observation count in bucket i.
func (h *Hist) BucketCount(i int) uint64 {
	if i < 0 || i >= Buckets {
		return 0
	}
	return h.counts[i]
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Max returns the exact maximum observation.
func (h *Hist) Max() int64 { return h.max }

// Sum returns the running total of observations.
func (h *Hist) Sum() int64 { return h.sum }

// Mean returns the mean observation.
func (h *Hist) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / int64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) —
// the exclusive upper edge of the bucket holding the target rank, so
// the reported p99 is never smaller than the true p99. The exact max
// caps the answer.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i == Buckets-1 {
				// Clamp bucket: its nominal edge understates
				// out-of-range observations, so fall back to the exact
				// maximum.
				return h.max
			}
			up := Upper(i)
			if up > h.max {
				up = h.max
			}
			return up
		}
	}
	return h.max
}
