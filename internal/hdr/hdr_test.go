package hdr

import (
	"math/bits"
	"math/rand"
	"testing"
)

// Reference copies of the bucket formulas as they shipped inside
// internal/loadgen before the extraction — the equivalence pin: if the
// shared package ever drifts from these, every historical BENCH_soak
// percentile stops being comparable.
func refIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < 32 {
		return int(v)
	}
	e := bits.Len64(v) - 1
	if e-5 >= 33 {
		return 32 + 33*32 - 1
	}
	sub := (v >> (uint(e) - 5)) & 31
	return 32 + (e-5)*32 + int(sub)
}

func refLower(i int) int64 {
	if i < 32 {
		return int64(i)
	}
	i -= 32
	e := i/32 + 5
	sub := i % 32
	return int64(1)<<uint(e) + int64(sub)<<(uint(e)-5)
}

func refUpper(i int) int64 {
	if i < 32 {
		return int64(i) + 1
	}
	j := i - 32
	e := j/32 + 5
	return refLower(i) + int64(1)<<(uint(e)-5)
}

func TestLayoutMatchesLoadgenOriginal(t *testing.T) {
	if Buckets != 32+33*32 {
		t.Fatalf("Buckets = %d, want %d", Buckets, 32+33*32)
	}
	for i := 0; i < Buckets; i++ {
		if got, want := Lower(i), refLower(i); got != want {
			t.Fatalf("Lower(%d) = %d, want %d", i, got, want)
		}
		if got, want := Upper(i), refUpper(i); got != want {
			t.Fatalf("Upper(%d) = %d, want %d", i, got, want)
		}
	}
	// Every bucket edge maps back into its own bucket, and the probe
	// set covers the linear region, octave transitions, and the clamp.
	probes := []int64{-5, 0, 1, 31, 32, 33, 63, 64, 1000, 1<<20 + 7, 1 << 37, 1<<38 - 1, 1 << 38, 1 << 62, 1<<63 - 1}
	for i := 0; i < Buckets; i++ {
		probes = append(probes, Lower(i), Upper(i)-1)
	}
	for _, v := range probes {
		if got, want := Index(v), refIndex(v); got != want {
			t.Fatalf("Index(%d) = %d, want %d", v, got, want)
		}
		if i := Index(v); v >= 0 && i < Buckets-1 {
			if v < Lower(i) || v >= Upper(i) {
				t.Fatalf("value %d landed in bucket %d = [%d,%d)", v, i, Lower(i), Upper(i))
			}
		}
	}
}

func TestBucketEdgesContiguous(t *testing.T) {
	for i := 1; i < Buckets; i++ {
		if Lower(i) != Upper(i-1) {
			t.Fatalf("gap between buckets %d and %d: upper %d, lower %d", i-1, i, Upper(i-1), Lower(i))
		}
	}
}

func TestQuantileBounds(t *testing.T) {
	var h Hist
	for v := int64(1); v <= 10000; v++ {
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		exact := int64(q * 10000)
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("Quantile(%v) = %d understates exact %d", q, got, exact)
		}
		if max := int64(float64(exact)*(1+2*RelativeError)) + 2; got > max {
			t.Fatalf("Quantile(%v) = %d exceeds %d (exact %d + bucket error)", q, got, max, exact)
		}
	}
	if h.Quantile(1.0) != h.Max() {
		t.Fatalf("Quantile(1.0) = %d, want exact max %d", h.Quantile(1.0), h.Max())
	}
}

func TestMergeEqualsSingleWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var whole Hist
	parts := make([]Hist, 4)
	for i := 0; i < 100000; i++ {
		v := rng.Int63n(1 << 40) // includes out-of-range clamps
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatalf("merged histogram differs from single-writer histogram")
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged Quantile(%v) = %d, single-writer %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestAddBucketFoldEqualsRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var direct Hist
	var buckets [Buckets]uint64
	var sum, max int64
	for i := 0; i < 50000; i++ {
		v := rng.Int63n(1 << 30)
		direct.Record(v)
		buckets[Index(v)]++
		sum += v
		if v > max {
			max = v
		}
	}
	var folded Hist
	for i, n := range buckets {
		folded.AddBucket(i, n)
	}
	folded.AddSum(sum)
	folded.ObserveMax(max)
	if folded != direct {
		t.Fatalf("bucket-folded histogram differs from Record path")
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)*997 + 13)
	}
}
