package report

import (
	"strings"
	"testing"
)

// fastOpts keeps the report tests quick.
func fastOpts() Options {
	return Options{
		Seed:              1,
		ScanDomains:       2000,
		Recipients:        10,
		LogDays:           20,
		LogMessagesPerDay: 60,
	}
}

func TestTable1Content(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Cutwail", "46.90%", "Kelihos", "36.33%", "Darkmailer(v3)", "93.02%", "70.69%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Content(t *testing.T) {
	out, res, err := Fig2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no study result")
	}
	for _, want := range []string{"Using nolisting", "One MX record", "Alexa", "top-15"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 missing %q", want)
		}
	}
}

func TestTable2Content(t *testing.T) {
	out, rows, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, want := range []string{"Cutwail:", "Kelihos:", "sample1", "GREYLISTING", "NOLISTING"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Content(t *testing.T) {
	out, err := Fig3(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "5s") || !strings.Contains(out, "5m0s") {
		t.Errorf("Fig3 missing thresholds:\n%s", out)
	}
	if !strings.Contains(out, "coincide") {
		t.Errorf("Fig3 missing interpretation note")
	}
}

func TestFig4Content(t *testing.T) {
	out, err := Fig4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"21600s", "failed", "delivered", "peak"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Content(t *testing.T) {
	out, err := Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"300s", "P(delay <= 10 min)", "median"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Content(t *testing.T) {
	out := Table3()
	for _, want := range []string{"gmail.com", "aol.com", "gave up", "qq.com", "india.com", "ATTEMPTS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
	// The two giving-up providers appear with "no".
	if strings.Count(out, "gave up") != 2 {
		t.Errorf("Table3 should show exactly 2 give-ups:\n%s", out)
	}
}

func TestTable4Content(t *testing.T) {
	out := Table4()
	for _, want := range []string{"sendmail", "exim", "postfix", "qmail", "courier", "exchange", "MAX QUEUE"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
	// Table IV's max queue days.
	for _, want := range []string{"5", "4", "7", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing queue-days %q", want)
		}
	}
}

func TestControlContent(t *testing.T) {
	out, err := Control()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "single spam task confirmed") {
		t.Errorf("Control output:\n%s", out)
	}
}

func TestRunDispatch(t *testing.T) {
	opts := fastOpts()
	for _, name := range Experiments {
		out, err := Run(name, opts)
		if err != nil {
			t.Errorf("Run(%s): %v", name, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("Run(%s): empty output", name)
		}
	}
	if _, err := Run("fig99", opts); err == nil {
		t.Error("Run accepted unknown experiment")
	}
}

func TestAllConcatenates(t *testing.T) {
	out, err := All(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Experiments {
		if !strings.Contains(out, "==== "+name) {
			t.Errorf("All missing section %q", name)
		}
	}
}

func TestCSVExports(t *testing.T) {
	opts := fastOpts()
	for _, name := range CSVExperiments {
		data, err := CSV(name, opts)
		if err != nil {
			t.Errorf("CSV(%s): %v", name, err)
			continue
		}
		lines := strings.Split(strings.TrimSpace(data), "\n")
		if len(lines) < 10 {
			t.Errorf("CSV(%s): only %d lines", name, len(lines))
		}
		if !strings.Contains(lines[0], ",") {
			t.Errorf("CSV(%s): header = %q", name, lines[0])
		}
	}
	if _, err := CSV("table1", opts); err == nil {
		t.Error("CSV accepted a non-figure experiment")
	}
}
