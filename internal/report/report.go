// Package report regenerates every table and figure of the paper's
// evaluation as text, backed by the experiment packages. Each Table*/Fig*
// function runs the underlying experiment and renders output shaped like
// the paper's artifact; cmd/reproduce and the benchmarks are thin
// wrappers over this package.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table1 — malware dataset composition
//	Fig2   — worldwide nolisting adoption
//	Table2 — defense effectiveness matrix
//	Fig3   — Kelihos delivery-delay CDFs at 5 s and 300 s
//	Fig4   — Kelihos retransmission timeline at 21 600 s
//	Fig5   — benign delivery-delay CDF on a real-style deployment
//	Table3 — webmail retry behaviour at a 6 h threshold
//	Table4 — MTA retransmission schedules
package report

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/dnsbl"
	"repro/internal/lab"
	"repro/internal/maillog"
	"repro/internal/mta"
	"repro/internal/nolist"
	"repro/internal/scan"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/webmail"
)

// Options scales the experiments.
type Options struct {
	// Seed drives every randomized experiment.
	Seed int64
	// ScanDomains is the Fig 2 synthetic population size.
	ScanDomains int
	// Recipients is the per-sample campaign size for Table 2 / Fig 3 /
	// Fig 4.
	Recipients int
	// LogDays and LogMessagesPerDay size the Fig 5 deployment.
	LogDays           int
	LogMessagesPerDay int
	// Workers bounds the worker pools that fan experiments (RunMany,
	// All), the Fig 2 domain scan, and the lab spec runner (Table 2's
	// 22 labs, the Fig 3 threshold pair, the obsolescence sweep) out
	// across cores: 0 means GOMAXPROCS, 1 forces serial execution.
	// Output is byte-identical at any worker count — experiments seed
	// their own rngs and virtual clocks independently, and results are
	// assembled in request order.
	Workers int
	// Tracer, when non-nil, records every Table 2 delivery attempt as
	// an end-to-end trace (the Attribution experiment always builds its
	// own exactly-sized tracer). Tracing never changes any rendering.
	Tracer *trace.Tracer
}

// Defaults returns laptop-scale options (seconds per experiment).
func Defaults() Options {
	return Options{
		Seed:              1,
		ScanDomains:       20000,
		Recipients:        50,
		LogDays:           120,
		LogMessagesPerDay: 200,
	}
}

// Table1 renders the malware dataset composition (Table I).
func Table1() string {
	tbl := stats.NewTable("MALWARE FAMILY", "% OF BOTNET SPAM (2014)", "SAMPLES")
	for _, f := range botnet.Families() {
		tbl.AddRow(f.Name, fmt.Sprintf("%.2f%%", f.BotnetSpamShare), fmt.Sprintf("%d", f.Samples))
	}
	tbl.AddRow("Total Botnet Spam", fmt.Sprintf("%.2f%%", botnet.TotalBotnetShare()), "11")
	// The paper truncates 93.02% × 76% = 70.6952% to 70.69%.
	tbl.AddRow("Total Global Spam", fmt.Sprintf("%.2f%%", math.Floor(botnet.TotalGlobalShare()*100)/100), "")
	return "Table I: Malware samples used in the experiments\n\n" + tbl.String()
}

// Fig2 runs the adoption study and renders the pie statistics.
func Fig2(opts Options) (string, *scan.StudyResult, error) {
	cfg := scan.DefaultConfig(opts.ScanDomains, opts.Seed)
	pop, err := scan.Generate(cfg)
	if err != nil {
		return "", nil, err
	}
	clock := simtime.NewSim(simtime.Epoch)
	res := scan.RunStudyWorkers(pop, clock, 56*24*time.Hour, opts.Workers)

	var sb strings.Builder
	sb.WriteString(res.RenderPie())
	fmt.Fprintf(&sb, "\nMethodology detail:\n")
	fmt.Fprintf(&sb, "  email servers observed:        %d\n", res.EmailServers)
	fmt.Fprintf(&sb, "  resolved addresses:            %d\n", res.ResolvedIPs)
	fmt.Fprintf(&sb, "  glue-less re-resolutions:      %d\n", res.ReResolutions)
	fmt.Fprintf(&sb, "  single-scan nolisting count:   %d (two-scan rule keeps %d)\n",
		res.SingleScanNolisting, res.Counts[nolist.CatNolisting])
	fmt.Fprintf(&sb, "  class churn between scans:     %.4f%%\n", 100*res.ChangeBetweenScans)
	fmt.Fprintf(&sb, "  misclassified vs ground truth: %d\n", res.Misclassified)
	fmt.Fprintf(&sb, "\nAlexa cross-check (paper: 1 in top-15, 2 in top-500, 2 more in top-1000):\n")
	fmt.Fprintf(&sb, "  nolisting domains in top-15:   %d\n", res.NolistingInTop15)
	fmt.Fprintf(&sb, "  nolisting domains in top-500:  %d\n", res.NolistingInTop500)
	fmt.Fprintf(&sb, "  nolisting domains in top-1000: %d\n", res.NolistingInTop1000)
	return sb.String(), res, nil
}

// Table2 runs the 11-sample defense matrix on the lab spec runner.
func Table2(opts Options) (string, []lab.MatrixRow, error) {
	r := lab.Runner{Workers: opts.Workers, Tracer: opts.Tracer}
	results, err := r.Run(lab.TableIISpecs(opts.Recipients))
	if err != nil {
		return "", nil, err
	}
	rows := lab.MatrixFromResults(results)
	out := "Table II: Effect of nolisting and greylisting on popular malware families\n" +
		"(effective = the technique prevented all spam from being delivered)\n\n" +
		lab.RenderTableII(rows)
	return out, rows, nil
}

// Fig3 runs the Kelihos delivery CDFs at 5 s and 300 s as one runner
// workload (both threshold labs fan out across opts.Workers).
func Fig3(opts Options) (string, error) {
	thresholds := []time.Duration{5 * time.Second, 300 * time.Second}
	cdfs, _, err := lab.KelihosDeliveryCDFs(thresholds, opts.Recipients, opts.Workers)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for i, threshold := range thresholds {
		cdf := cdfs[i]
		fmt.Fprintf(&sb, "Figure 3: CDF of Kelihos spam delivery delay, greylisting threshold %v\n", threshold)
		fmt.Fprintf(&sb, "(n=%d delivered; min %.0fs, median %.0fs, max %.0fs)\n",
			cdf.N(), cdf.Min(), cdf.Median(), cdf.Max())
		sb.WriteString(stats.RenderCDF(cdf, 60, 10, "s"))
		sb.WriteString("\n")
	}
	sb.WriteString("Note: the two curves coincide — Kelihos never retries before ~300s,\n" +
		"so a 5s threshold stops no more spam than the 300s default.\n")
	return sb.String(), nil
}

// Fig4 runs the Kelihos retransmission timeline at 21 600 s.
func Fig4(opts Options) (string, error) {
	points, err := lab.KelihosTimeline(21600*time.Second, opts.Recipients)
	if err != nil {
		return "", err
	}
	centers, hist := lab.TimelinePeaks(points, 2000)
	sort.Float64s(centers)

	var failed, delivered int
	var deliveredOffsets []time.Duration
	for _, p := range points {
		if p.Delivered {
			delivered++
			deliveredOffsets = append(deliveredOffsets, p.Offset)
		} else {
			failed++
		}
	}
	var sb strings.Builder
	sb.WriteString("Figure 4: Kelihos retransmission delays, greylisting threshold 21600s (6h)\n\n")
	fmt.Fprintf(&sb, "attempts: %d failed (below threshold), %d delivered (above threshold)\n", failed, delivered)
	fmt.Fprintf(&sb, "retry peaks (bucket centers, seconds): %v\n", centers)
	if len(deliveredOffsets) > 0 {
		cdf := stats.NewDurationCDF(deliveredOffsets)
		fmt.Fprintf(&sb, "deliveries land between %.0fs and %.0fs — the 80000-90000s peak\n", cdf.Min(), cdf.Max())
	}
	if hist != nil {
		sb.WriteString("\nretransmission histogram (2000s buckets, # = attempts):\n")
		counts := hist.Counts()
		for i, c := range counts {
			if c == 0 {
				continue
			}
			lo, hi := hist.BucketBounds(i)
			fmt.Fprintf(&sb, "  %6.0f-%6.0fs %s (%d)\n", lo, hi, strings.Repeat("#", int(c)), c)
		}
	}
	return sb.String(), nil
}

// Fig5 generates the deployment log and renders the benign-delay CDF.
func Fig5(opts Options) (string, error) {
	cfg := maillog.DefaultGeneratorConfig(opts.Seed)
	if opts.LogDays > 0 {
		cfg.Days = opts.LogDays
	}
	if opts.LogMessagesPerDay > 0 {
		cfg.MessagesPerDay = opts.LogMessagesPerDay
	}
	entries, summary, err := maillog.Generate(cfg)
	if err != nil {
		return "", err
	}
	cdf := maillog.Fig5CDF(entries)

	var sb strings.Builder
	sb.WriteString("Figure 5: CDF of email delivery delay on a real-style deployment (threshold 300s)\n\n")
	fmt.Fprintf(&sb, "log: %d days, %d messages, %d entries, %.1f%% never delivered\n",
		cfg.Days, summary.Messages, summary.Entries, 100*maillog.LostFraction(entries))
	fmt.Fprintf(&sb, "greylisted & delivered: n=%d\n", cdf.N())
	fmt.Fprintf(&sb, "  P(delay <= 10 min) = %.2f   (paper: ~0.5)\n", cdf.P(600))
	fmt.Fprintf(&sb, "  P(delay  > 50 min) = %.2f   (paper: a visible tail)\n", 1-cdf.P(3000))
	fmt.Fprintf(&sb, "  median %.0fs, p90 %.0fs, max %.0fs\n",
		cdf.Median(), cdf.Quantile(0.9), cdf.Max())
	sb.WriteString("\n")
	sb.WriteString(stats.RenderCDF(cdf, 60, 10, "s"))
	return sb.String(), nil
}

// Table3 simulates the webmail providers against the 6 h threshold.
func Table3() string {
	results := webmail.SimulateAll(6 * time.Hour)
	providers := webmail.Top10()
	tbl := stats.NewTable("PROVIDER", "SAME IP", "ATTEMPTS", "DELIVER", "LAST/DELIVERY DELAY")
	for i, r := range results {
		same := "yes"
		if !r.SameIP {
			same = fmt.Sprintf("no (%d)", providers[i].PoolSize)
		}
		deliver := "no"
		delay := stats.FormatDuration(providers[i].GiveUpAfter()) + " (gave up)"
		if r.Delivered {
			deliver = "yes"
			delay = stats.FormatDuration(r.DeliveredAt)
		}
		tbl.AddRow(r.Provider, same, fmt.Sprintf("%d", r.AttemptsMade), deliver, delay)
	}
	return "Table III: Webmail delivery attempts with a 360-minute (6h) greylisting threshold\n\n" +
		tbl.String()
}

// Table4 renders the MTA retransmission schedules.
func Table4() string {
	tbl := stats.NewTable("MTA", "RETRANSMISSION TIME (first 10h, min)", "MAX QUEUE TIME (days)")
	for _, s := range mta.All() {
		times := s.AttemptTimes(10 * time.Hour)
		var mins []string
		for _, t := range times[1:] {
			mins = append(mins, trimZero(fmt.Sprintf("%.1f", t.Minutes())))
			if len(mins) == 12 {
				mins = append(mins, "...")
				break
			}
		}
		tbl.AddRow(s.Name, strings.Join(mins, ", "),
			fmt.Sprintf("%.0f", s.MaxQueueTime.Hours()/24))
	}
	return "Table IV: Retransmission time of popular MTA servers\n\n" + tbl.String()
}

func trimZero(s string) string { return strings.TrimSuffix(s, ".0") }

// Control renders the Section V-A control-experiment outcome.
func Control() (string, error) {
	res, err := lab.RunControlExperiment()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("Control experiment (Section V-A): unprotected postmaster\n\n"+
		"  control (postmaster) deliveries: %d\n"+
		"  protected-user deliveries:       %d (observation below threshold)\n"+
		"  identical payloads:              %v -> single spam task confirmed\n",
		res.ControlDelivered, res.ProtectedDelivered, res.SamePayload), nil
}

// Obsolescence runs the Results Validity projection: how each defense's
// blocked share decays as bots adopt both counter-countermeasures.
func Obsolescence(opts Options) (string, error) {
	shares := []float64{0, 0.1, 0.25, 0.5, 0.75, 1}
	points, err := lab.ObsolescenceWorkers(shares, opts.Recipients, opts.Workers)
	if err != nil {
		return "", err
	}
	tbl := stats.NewTable("EVOLVED SHARE", "none", "nolisting", "greylisting", "both")
	for _, p := range points {
		tbl.AddRow(
			fmt.Sprintf("%.0f%%", 100*p.EvolvedShare),
			fmt.Sprintf("%.1f%%", 100*p.BlockedByDefense[core.DefenseNone]),
			fmt.Sprintf("%.1f%%", 100*p.BlockedByDefense[core.DefenseNolisting]),
			fmt.Sprintf("%.1f%%", 100*p.BlockedByDefense[core.DefenseGreylisting]),
			fmt.Sprintf("%.1f%%", 100*p.BlockedByDefense[core.DefenseBoth]),
		)
	}
	return "Obsolescence projection (Results Validity): blocked share of botnet spam\n" +
		"as bots adopt RFC-compliant MX walking AND greylisting-compatible retries\n\n" +
		tbl.String() +
		"\nReading: the 2015 snapshot (0% evolved) matches Table II; full adoption\n" +
		"makes both techniques obsolete — 'at that moment it will not be worth\n" +
		"paying the price anymore.'\n", nil
}

// Synergy runs the greylisting+DNSBL race (the Section II claim that the
// greylisting delay lets blacklists catch retrying spammers).
func Synergy(opts Options) (string, error) {
	latencies := []time.Duration{
		30 * time.Second, 60 * time.Second, 300 * time.Second,
		900 * time.Second, 2 * time.Hour,
	}
	tbl := stats.NewTable("FEED LATENCY", "GREYLISTING ONLY", "GREYLISTING + DNSBL", "LISTED BEFORE RETRY")
	n := opts.Recipients
	if n <= 0 {
		n = 10
	}
	for i, latency := range latencies {
		res, err := dnsbl.Synergy(latency, n, opts.Seed+int64(i))
		if err != nil {
			return "", err
		}
		tbl.AddRow(
			latency.String(),
			fmt.Sprintf("%d/%d delivered", res.DeliveredGreylistOnly, n),
			fmt.Sprintf("%d/%d delivered", res.DeliveredWithDNSBL, n),
			fmt.Sprintf("%v", res.ListedBeforeRetry),
		)
	}
	return "Greylisting + DNSBL synergy (Section II's untested claim):\n" +
		"a Kelihos-style retrying bot beats greylisting alone, but its deferred\n" +
		"first attempt feeds a spamtrap; if the blacklist publishes before the\n" +
		"bot's retry (>= 300s), the retry is rejected permanently.\n\n" +
		tbl.String() +
		"\nReading: the claim holds exactly when the feed is faster than the\n" +
		"greylisting threshold — fast feeds convert the delay into a block,\n" +
		"slow feeds lose the race.\n", nil
}

// Bypass runs the bypass-layer study: each greylisting bypass
// heuristic (SPF-domain keying, DNSWL, rDNS, earned whitelist) alone
// ahead of the triplet check, measuring the benign first-contact delay
// it eliminates against the bot leakage it admits — including the
// SPFProbe adversary that publishes its own SPF record.
func Bypass(opts Options) (string, error) {
	rows, err := lab.RunBypassStudy(opts.Recipients, opts.Workers, opts.Tracer)
	if err != nil {
		return "", err
	}
	return lab.RenderBypassStudy(rows), nil
}

// Experiment names accepted by Run.
var Experiments = []string{"table1", "fig2", "table2", "fig3", "fig4", "fig5", "table3", "table4", "control", "obsolescence", "synergy", "attribution", "bypass"}

// Run executes one named experiment and returns its rendering.
func Run(name string, opts Options) (string, error) {
	switch name {
	case "table1":
		return Table1(), nil
	case "fig2":
		out, _, err := Fig2(opts)
		return out, err
	case "table2":
		out, _, err := Table2(opts)
		return out, err
	case "fig3":
		return Fig3(opts)
	case "fig4":
		return Fig4(opts)
	case "fig5":
		return Fig5(opts)
	case "table3":
		return Table3(), nil
	case "table4":
		return Table4(), nil
	case "control":
		return Control()
	case "obsolescence":
		return Obsolescence(opts)
	case "synergy":
		return Synergy(opts)
	case "attribution":
		return Attribution(opts)
	case "bypass":
		return Bypass(opts)
	default:
		return "", fmt.Errorf("report: unknown experiment %q (have %s)", name, strings.Join(Experiments, ", "))
	}
}

// RunMany executes the named experiments concurrently on a worker pool
// bounded by opts.Workers (0 = GOMAXPROCS, 1 = serial) and returns their
// renderings in the order requested. Output is deterministic: every
// experiment builds its own rng and virtual clock from opts, shares no
// mutable state with its siblings, and writes its result at its own
// index. The first error (in request order) wins.
func RunMany(names []string, opts Options) ([]string, error) {
	outs := make([]string, len(names))
	errs := make([]error, len(names))
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	if workers <= 1 {
		for i, name := range names {
			outs[i], errs[i] = Run(name, opts)
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(names) {
						return
					}
					outs[i], errs[i] = Run(names[i], opts)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", names[i], err)
		}
	}
	return outs, nil
}

// All runs every experiment in paper order, concatenated. Experiments
// run on the RunMany worker pool; the rendering is byte-identical to the
// serial loop at any opts.Workers.
func All(opts Options) (string, error) {
	outs, err := RunMany(Experiments, opts)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for i, name := range Experiments {
		sb.WriteString("==== " + name + " " + strings.Repeat("=", 60-len(name)) + "\n\n")
		sb.WriteString(outs[i])
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// CSVExperiments lists the experiments CSV can export.
var CSVExperiments = []string{"fig3", "fig4", "fig5"}

// CSV exports a figure's underlying data points as CSV, for plotting with
// external tools:
//
//	fig3: threshold_s,delay_s,probability   (both CDF curves)
//	fig4: offset_s,try,delivered            (every attempt)
//	fig5: delay_s,probability               (the deployment CDF)
func CSV(name string, opts Options) (string, error) {
	var sb strings.Builder
	switch name {
	case "fig3":
		sb.WriteString("threshold_s,delay_s,probability\n")
		thresholds := []time.Duration{5 * time.Second, 300 * time.Second}
		cdfs, _, err := lab.KelihosDeliveryCDFs(thresholds, opts.Recipients, opts.Workers)
		if err != nil {
			return "", err
		}
		for i, threshold := range thresholds {
			for _, pt := range cdfs[i].Points(200) {
				fmt.Fprintf(&sb, "%.0f,%.3f,%.6f\n", threshold.Seconds(), pt.X, pt.P)
			}
		}
	case "fig4":
		sb.WriteString("offset_s,try,delivered\n")
		points, err := lab.KelihosTimeline(21600*time.Second, opts.Recipients)
		if err != nil {
			return "", err
		}
		for _, p := range points {
			fmt.Fprintf(&sb, "%.3f,%d,%v\n", p.Offset.Seconds(), p.Try, p.Delivered)
		}
	case "fig5":
		sb.WriteString("delay_s,probability\n")
		cfg := maillog.DefaultGeneratorConfig(opts.Seed)
		if opts.LogDays > 0 {
			cfg.Days = opts.LogDays
		}
		if opts.LogMessagesPerDay > 0 {
			cfg.MessagesPerDay = opts.LogMessagesPerDay
		}
		entries, _, err := maillog.Generate(cfg)
		if err != nil {
			return "", err
		}
		for _, pt := range maillog.Fig5CDF(entries).Points(400) {
			fmt.Fprintf(&sb, "%.3f,%.6f\n", pt.X, pt.P)
		}
	default:
		return "", fmt.Errorf("report: no CSV export for %q (have %s)", name, strings.Join(CSVExperiments, ", "))
	}
	return sb.String(), nil
}
