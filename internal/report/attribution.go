package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lab"
	"repro/internal/trace"
)

// Attribution replays the Table II workload with end-to-end tracing
// enabled and rebuilds every cell of the defense matrix from trace
// evidence alone: for each family × sample × defense it reports the
// attempt and delivery counts counted from finished traces, plus the
// verdict chains — the ordered spans (dial refusal, greylist verdict,
// SMTP reply, retry decision) that terminated each attempt. The derived
// matrix is cross-checked against the runner's own aggregates; a
// mismatch is an error, because it would mean the traces do not explain
// the results they claim to.
//
// Output is deterministic at any worker count: every quantity is an
// order-independent aggregate over the trace set, and trace IDs are
// deliberately omitted (they differ run to run only in assignment
// order, never in meaning).
func Attribution(opts Options) (string, error) {
	specs := lab.TableIISpecs(opts.Recipients)

	// Size the ring exactly: each recipient costs at most 1 + retries
	// attempts, and every attempt is one finished trace. Delivered
	// recipients stop retrying, so this bounds the trace count from
	// above and the ring never wraps.
	capacity := 0
	for _, s := range specs {
		capacity += s.Recipients * (1 + len(s.Family.Retry.Peaks))
	}
	tracer := trace.New(capacity)

	r := lab.Runner{Workers: opts.Workers, Tracer: tracer}
	results, err := r.Run(specs)
	if err != nil {
		return "", err
	}

	// Fold the trace set into per-cell evidence.
	type cell struct {
		attempts  int
		delivered int
		chains    map[string]int
	}
	cells := make(map[string]*cell)
	key := func(family string, sample int, defense string) string {
		return fmt.Sprintf("%s|%d|%s", family, sample, defense)
	}
	for _, tr := range tracer.Snapshot() {
		tags := tr.Tags()
		k := key(tags.Family, tags.Sample, tags.Defense)
		c := cells[k]
		if c == nil {
			c = &cell{chains: make(map[string]int)}
			cells[k] = c
		}
		c.attempts++
		if tr.Outcome() == "delivered" {
			c.delivered++
		}
		c.chains[verdictChain(tr.Events())]++
	}

	var sb strings.Builder
	sb.WriteString("Attribution (trace evidence): every Table II cell explained by its verdict chains\n")
	sb.WriteString("(each chain is the ordered spans that terminated an attempt; counts prefix each chain)\n")

	lastFamily := ""
	for _, spec := range specs {
		if spec.Family.Name != lastFamily {
			fmt.Fprintf(&sb, "\n%s:\n", spec.Family.Name)
			lastFamily = spec.Family.Name
		}
		defense := spec.Defense.String()
		c := cells[key(spec.Family.Name, spec.SampleID, defense)]
		if c == nil {
			return "", fmt.Errorf("report: attribution: no traces for %s sample %d vs %s",
				spec.Family.Name, spec.SampleID, defense)
		}
		verdict := "effective"
		if c.delivered > 0 {
			verdict = "INEFFECTIVE"
		}
		fmt.Fprintf(&sb, "  sample%d vs %-12s %-12s (%d attempts, %d delivered)\n",
			spec.SampleID, defense+":", verdict, c.attempts, c.delivered)
		for _, line := range sortedChains(c.chains) {
			fmt.Fprintf(&sb, "    %s\n", line)
		}
	}

	// Cross-check: the trace-derived matrix must reproduce the runner's.
	rows := lab.MatrixFromResults(results)
	for _, row := range rows {
		grey := cells[key(row.Family, row.SampleID, "greylisting")]
		nol := cells[key(row.Family, row.SampleID, "nolisting")]
		if grey == nil || nol == nil {
			return "", fmt.Errorf("report: attribution: missing traces for %s sample %d", row.Family, row.SampleID)
		}
		if (grey.delivered == 0) != row.GreylistingEffective || (nol.delivered == 0) != row.NolistingEffective {
			return "", fmt.Errorf("report: attribution: trace-derived verdict for %s sample %d disagrees with the runner's aggregates",
				row.Family, row.SampleID)
		}
	}
	fmt.Fprintf(&sb, "\ncross-check: trace-derived matrix matches the runner's aggregates for all %d samples\n", len(rows))
	return sb.String(), nil
}

// verdictChain compresses one attempt's events into the chain of spans
// that decided it. Durations are omitted (retry jitter would fragment
// identical chains); the trace itself retains them.
func verdictChain(events []trace.Event) string {
	var parts []string
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindDial:
			if ev.Detail != "ok" {
				// The error text repeats the dialed address; keep only
				// its final segment ("connection refused", "host
				// unreachable").
				detail := ev.Detail
				if i := strings.LastIndex(detail, ": "); i >= 0 {
					detail = detail[i+2:]
				}
				parts = append(parts, "dial "+ev.Name+": "+detail)
			}
		case trace.KindGreylist:
			// Detail is "(ip, sender, rcpt) reason"; keep the reason.
			reason := ev.Detail
			if i := strings.LastIndex(reason, ") "); i >= 0 {
				reason = reason[i+2:]
			}
			parts = append(parts, "greylist "+ev.Name+" ("+reason+")")
		case trace.KindVerb:
			if ev.Code >= 400 {
				parts = append(parts, fmt.Sprintf("%s %d", ev.Name, ev.Code))
			}
		case trace.KindQueue:
			switch ev.Name {
			case "retry-scheduled":
				parts = append(parts, "retry scheduled")
			case "no-retry":
				parts = append(parts, "no retry")
			}
		case trace.KindOutcome:
			parts = append(parts, "outcome "+ev.Name)
		}
	}
	return strings.Join(parts, " -> ")
}

// sortedChains renders a chain histogram, most frequent first, ties
// broken lexicographically — an order-independent aggregate.
func sortedChains(chains map[string]int) []string {
	keys := make([]string, 0, len(chains))
	for k := range chains {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if chains[keys[i]] != chains[keys[j]] {
			return chains[keys[i]] > chains[keys[j]]
		}
		return keys[i] < keys[j]
	})
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%dx %s", chains[k], k)
	}
	return out
}
