package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParallelMatchesGoldenResults regenerates every experiment at the
// committed defaults with the worker pool enabled and asserts the output
// is byte-identical to the results/*.txt files in the repository — the
// determinism guarantee the parallel pipeline promises. A mismatch means
// either a behavioural change (recommit results/ deliberately) or a
// determinism bug in the fan-out (fix the fan-out).
func TestParallelMatchesGoldenResults(t *testing.T) {
	resultsDir := filepath.Join("..", "..", "results")
	if _, err := os.Stat(resultsDir); err != nil {
		t.Skipf("no committed results directory: %v", err)
	}

	opts := Defaults()
	opts.Workers = 0 // one worker per core — parallelism on
	outs, err := RunMany(Experiments, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range Experiments {
		golden, err := os.ReadFile(filepath.Join(resultsDir, name+".txt"))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if string(golden) != outs[i] {
			t.Errorf("%s: parallel output differs from committed results/%s.txt (first divergence at byte %d)",
				name, name, firstDiff(string(golden), outs[i]))
		}
	}

	// All must assemble exactly these renderings, in paper order.
	all, err := All(opts)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i, name := range Experiments {
		sb.WriteString("==== " + name + " " + strings.Repeat("=", 60-len(name)) + "\n\n")
		sb.WriteString(outs[i])
		sb.WriteString("\n")
	}
	if all != sb.String() {
		t.Errorf("All differs from the per-experiment concatenation (first divergence at byte %d)",
			firstDiff(sb.String(), all))
	}
}

// TestRunManySerialParallelIdentical checks worker count never changes
// output, at test scale (cheaper than the golden run, catches fan-out
// nondeterminism even if results/ drifts).
func TestRunManySerialParallelIdentical(t *testing.T) {
	serial := fastOpts()
	serial.Workers = 1
	parallel := fastOpts()
	parallel.Workers = 4

	s, err := RunMany(Experiments, serial)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunMany(Experiments, parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range Experiments {
		if s[i] != p[i] {
			t.Errorf("%s: serial and 4-worker outputs differ (first divergence at byte %d)",
				name, firstDiff(s[i], p[i]))
		}
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
