// Package mta models the retransmission behaviour of the popular Mail
// Transfer Agents from Table IV of the paper — sendmail, exim, postfix,
// qmail, courier and exchange — and provides the retry-queue engine that
// plays any such schedule against a greylisting policy.
//
// A Schedule describes WHEN an MTA retries a temporarily-failed delivery
// (offsets from the initial attempt) and for how long it keeps trying
// before bouncing the message (the "max queue time"). The paper notes
// that "Exchange was the only MTA not RFC-822 compliant with respect to
// the time-to-live" (2 days instead of the recommended 4-5).
package mta

import (
	"fmt"
	"time"
)

// Schedule is an MTA retransmission policy. Exactly one continuation mode
// (Step, Growth or Quadratic) may be set; Retries lists explicit initial
// retry offsets used before the continuation takes over.
type Schedule struct {
	// Name identifies the MTA.
	Name string
	// Retries are explicit retry offsets from the initial attempt
	// (which always happens at offset 0).
	Retries []time.Duration
	// Step, when positive, continues the schedule arithmetically: each
	// subsequent retry Step after the previous one.
	Step time.Duration
	// Growth, when > 1, continues the schedule geometrically: the next
	// retry offset is the previous offset times Growth (exim's ×1.5).
	Growth float64
	// Quadratic, when positive, generates the whole schedule as
	// offset(n) = Quadratic × n² (qmail's 400 s × n²); Retries must be
	// empty in this mode.
	Quadratic time.Duration
	// MaxQueueTime is how long the message stays queued before the MTA
	// gives up and bounces (Table IV's "MAX QUEUE TIME").
	MaxQueueTime time.Duration
}

// Validate checks the schedule is well-formed.
func (s Schedule) Validate() error {
	modes := 0
	if s.Step > 0 {
		modes++
	}
	if s.Growth > 1 {
		modes++
	}
	if s.Quadratic > 0 {
		modes++
	}
	if modes > 1 {
		return fmt.Errorf("mta: %s: more than one continuation mode", s.Name)
	}
	if s.Quadratic > 0 && len(s.Retries) > 0 {
		return fmt.Errorf("mta: %s: quadratic mode excludes explicit retries", s.Name)
	}
	if s.MaxQueueTime <= 0 {
		return fmt.Errorf("mta: %s: max queue time required", s.Name)
	}
	for i := 1; i < len(s.Retries); i++ {
		if s.Retries[i] <= s.Retries[i-1] {
			return fmt.Errorf("mta: %s: retries not increasing at %d", s.Name, i)
		}
	}
	return nil
}

// AttemptTimes returns the offsets of every delivery attempt (the initial
// one at 0 plus retries) up to min(horizon, MaxQueueTime). A zero horizon
// means MaxQueueTime.
func (s Schedule) AttemptTimes(horizon time.Duration) []time.Duration {
	limit := s.MaxQueueTime
	if horizon > 0 && horizon < limit {
		limit = horizon
	}
	out := []time.Duration{0}

	if s.Quadratic > 0 {
		for n := 1; ; n++ {
			t := s.Quadratic * time.Duration(n*n)
			if t > limit {
				break
			}
			out = append(out, t)
		}
		return out
	}

	last := time.Duration(0)
	for _, r := range s.Retries {
		if r > limit {
			return out
		}
		out = append(out, r)
		last = r
	}
	switch {
	case s.Step > 0:
		for t := last + s.Step; t <= limit; t += s.Step {
			out = append(out, t)
		}
	case s.Growth > 1:
		for t := last; ; {
			next := time.Duration(float64(t) * s.Growth)
			if next <= t || next > limit {
				break
			}
			out = append(out, next)
			t = next
		}
	}
	return out
}

// Table IV's schedules. The minute lists in the paper are encoded either
// explicitly or via their generating rule.

// Sendmail retries every 10 minutes for up to 5 days.
func Sendmail() Schedule {
	return Schedule{Name: "sendmail", Step: 10 * time.Minute, MaxQueueTime: 5 * 24 * time.Hour}
}

// Exim retries every 15 minutes for the first 2 hours, then multiplies
// the interval by 1.5 (15, 30, …, 120, 180, 270, 405, 607.5 …), for up
// to 4 days.
func Exim() Schedule {
	var retries []time.Duration
	for m := 15; m <= 120; m += 15 {
		retries = append(retries, time.Duration(m)*time.Minute)
	}
	return Schedule{Name: "exim", Retries: retries, Growth: 1.5, MaxQueueTime: 4 * 24 * time.Hour}
}

// Postfix retries at 5, 10, 15, 20, 25, 30, 45 minutes and then every 15
// minutes, for up to 5 days.
func Postfix() Schedule {
	return Schedule{
		Name: "postfix",
		Retries: []time.Duration{
			5 * time.Minute, 10 * time.Minute, 15 * time.Minute, 20 * time.Minute,
			25 * time.Minute, 30 * time.Minute, 45 * time.Minute,
		},
		Step:         15 * time.Minute,
		MaxQueueTime: 5 * 24 * time.Hour,
	}
}

// Qmail retries quadratically at 400·n² seconds (6.6, 26.6, 60, 106.6,
// 166.6, 240, … minutes), for up to 7 days.
func Qmail() Schedule {
	return Schedule{Name: "qmail", Quadratic: 400 * time.Second, MaxQueueTime: 7 * 24 * time.Hour}
}

// Courier retries in bursts of three attempts 5 minutes apart, with the
// burst start times at 5, 30, 70, 140, 270, 400, 530, 660 minutes
// (Table IV), continuing every 130 minutes, for up to 7 days.
func Courier() Schedule {
	starts := []int{5, 30, 70, 140, 270, 400, 530, 660}
	var retries []time.Duration
	for _, s := range starts {
		for k := 0; k < 3; k++ {
			retries = append(retries, time.Duration(s+5*k)*time.Minute)
		}
	}
	return Schedule{Name: "courier", Retries: retries, Step: 130 * time.Minute, MaxQueueTime: 7 * 24 * time.Hour}
}

// Exchange retries every 15 minutes but keeps the message for only 2
// days — the paper singles it out as the one non-RFC-822-compliant
// time-to-live.
func Exchange() Schedule {
	return Schedule{Name: "exchange", Step: 15 * time.Minute, MaxQueueTime: 2 * 24 * time.Hour}
}

// All returns the Table IV schedules in the paper's row order.
func All() []Schedule {
	return []Schedule{Sendmail(), Exim(), Postfix(), Qmail(), Courier(), Exchange()}
}

// ByName returns the named schedule, or an error.
func ByName(name string) (Schedule, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Schedule{}, fmt.Errorf("mta: unknown MTA %q", name)
}

// Result is the outcome of playing a schedule against an acceptance
// predicate.
type Result struct {
	// Delivered reports whether some attempt was accepted.
	Delivered bool
	// DeliveredAt is the offset of the accepted attempt.
	DeliveredAt time.Duration
	// Attempts counts delivery attempts made (including the accepted
	// one).
	Attempts int
	// AttemptTimes are the offsets of all attempts made.
	AttemptTimes []time.Duration
	// GaveUp reports that the queue lifetime expired with no
	// acceptance — the message bounced.
	GaveUp bool
}

// Run plays the schedule against accept: attempts happen at the schedule's
// offsets and stop at the first accepted one. This is how Figure 5's
// benign-delay distribution arises: the delivery delay of a greylisted
// message is the first schedule offset at or past the threshold.
func (s Schedule) Run(accept func(elapsed time.Duration) bool) Result {
	var res Result
	for _, t := range s.AttemptTimes(0) {
		res.Attempts++
		res.AttemptTimes = append(res.AttemptTimes, t)
		if accept(t) {
			res.Delivered = true
			res.DeliveredAt = t
			return res
		}
	}
	res.GaveUp = true
	return res
}

// RunGreylisted plays the schedule against an ideal greylisting policy
// with the given threshold: the first attempt registers the triplet and
// every attempt at offset >= threshold (within the retry window, assumed
// unbounded here) is accepted.
func (s Schedule) RunGreylisted(threshold time.Duration) Result {
	return s.Run(func(elapsed time.Duration) bool { return elapsed >= threshold && elapsed > 0 })
}

// DeliveryDelay returns the delay greylisting with the given threshold
// inflicts on this MTA, and whether the message is delivered at all
// before the queue expires.
func (s Schedule) DeliveryDelay(threshold time.Duration) (time.Duration, bool) {
	res := s.RunGreylisted(threshold)
	if !res.Delivered {
		return 0, false
	}
	return res.DeliveredAt, true
}
