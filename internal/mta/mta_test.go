package mta

import (
	"testing"
	"testing/quick"
	"time"
)

func minutes(ms ...float64) []time.Duration {
	out := make([]time.Duration, len(ms))
	for i, m := range ms {
		out[i] = time.Duration(m * float64(time.Minute))
	}
	return out
}

func TestAllSchedulesValid(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("All() = %d schedules, want the 6 of Table IV", len(all))
	}
	for _, s := range all {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("qmail")
	if err != nil || s.Name != "qmail" {
		t.Fatalf("ByName = %+v, %v", s, err)
	}
	if _, err := ByName("notanmta"); err == nil {
		t.Fatal("ByName accepted unknown MTA")
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	bad := []Schedule{
		{Name: "two-modes", Step: time.Minute, Growth: 1.5, MaxQueueTime: time.Hour},
		{Name: "quad-plus-retries", Quadratic: time.Second, Retries: minutes(5), MaxQueueTime: time.Hour},
		{Name: "no-queue-time", Step: time.Minute},
		{Name: "non-increasing", Retries: minutes(10, 5), MaxQueueTime: time.Hour},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad schedule", s.Name)
		}
	}
}

// TestTableIVFirstTenHours checks the paper's Table IV rows verbatim over
// the 10-hour horizon the table covers.
func TestTableIVFirstTenHours(t *testing.T) {
	horizon := 10 * time.Hour
	cases := []struct {
		schedule Schedule
		want     []time.Duration // retry offsets, excluding the initial attempt
		maxQueue time.Duration
	}{
		{Sendmail(), minutes(10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150,
			160, 170, 180, 190, 200, 210, 220, 230, 240, 250, 260, 270, 280, 290, 300,
			310, 320, 330, 340, 350, 360, 370, 380, 390, 400, 410, 420, 430, 440, 450,
			460, 470, 480, 490, 500, 510, 520, 530, 540, 550, 560, 570, 580, 590, 600),
			5 * 24 * time.Hour},
		{Exim(), minutes(15, 30, 45, 60, 75, 90, 105, 120, 180, 270, 405), 4 * 24 * time.Hour},
		{Postfix(), minutes(5, 10, 15, 20, 25, 30, 45, 60, 75, 90, 105, 120, 135, 150, 165,
			180, 195, 210, 225, 240, 255, 270, 285, 300, 315, 330, 345, 360, 375, 390,
			405, 420, 435, 450, 465, 480, 495, 510, 525, 540, 555, 570, 585, 600),
			5 * 24 * time.Hour},
		{Qmail(), minutes(400.0/60, 1600.0/60, 3600.0/60, 6400.0/60, 10000.0/60,
			14400.0/60, 19600.0/60, 25600.0/60, 32400.0/60), 7 * 24 * time.Hour},
		{Courier(), minutes(5, 10, 15, 30, 35, 40, 70, 75, 80, 140, 145, 150,
			270, 275, 280, 400, 405, 410, 530, 535, 540), 7 * 24 * time.Hour},
		{Exchange(), minutes(15, 30, 45, 60, 75, 90, 105, 120, 135, 150, 165, 180, 195, 210,
			225, 240, 255, 270, 285, 300, 315, 330, 345, 360, 375, 390, 405, 420, 435,
			450, 465, 480, 495, 510, 525, 540, 555, 570, 585, 600), 2 * 24 * time.Hour},
	}
	for _, tc := range cases {
		t.Run(tc.schedule.Name, func(t *testing.T) {
			got := tc.schedule.AttemptTimes(horizon)
			if got[0] != 0 {
				t.Fatalf("first attempt at %v, want 0", got[0])
			}
			retries := got[1:]
			if len(retries) != len(tc.want) {
				t.Fatalf("%d retries in 10h, want %d\n got: %v", len(retries), len(tc.want), retries)
			}
			for i := range tc.want {
				if retries[i] != tc.want[i] {
					t.Fatalf("retry %d = %v, want %v", i, retries[i], tc.want[i])
				}
			}
			if tc.schedule.MaxQueueTime != tc.maxQueue {
				t.Fatalf("max queue = %v, want %v", tc.schedule.MaxQueueTime, tc.maxQueue)
			}
		})
	}
}

func TestEximGeometricContinuation(t *testing.T) {
	// Past 10 hours the ×1.5 growth continues: 607.5 min.
	times := Exim().AttemptTimes(11 * time.Hour)
	last := times[len(times)-1]
	want := time.Duration(607.5 * float64(time.Minute))
	if last != want {
		t.Fatalf("last attempt = %v, want %v", last, want)
	}
}

func TestAttemptTimesCappedByMaxQueue(t *testing.T) {
	s := Exchange() // 2-day queue
	times := s.AttemptTimes(0)
	last := times[len(times)-1]
	if last > s.MaxQueueTime {
		t.Fatalf("attempt at %v beyond queue lifetime %v", last, s.MaxQueueTime)
	}
	// 2 days / 15 min = 192 retries + initial.
	if len(times) != 193 {
		t.Fatalf("attempts = %d, want 193", len(times))
	}
}

func TestRunGreylistedTypicalThreshold(t *testing.T) {
	// With the Postgrey default of 300 s, every Table IV MTA delivers
	// on its first retry.
	for _, s := range All() {
		res := s.RunGreylisted(300 * time.Second)
		if !res.Delivered {
			t.Errorf("%s: not delivered at 300s threshold", s.Name)
			continue
		}
		if res.Attempts != 2 {
			t.Errorf("%s: %d attempts, want 2 (initial + first retry)", s.Name, res.Attempts)
		}
		first := s.AttemptTimes(0)[1]
		if res.DeliveredAt != first {
			t.Errorf("%s: delivered at %v, want first retry %v", s.Name, res.DeliveredAt, first)
		}
	}
}

func TestRunGreylistedDelays300s(t *testing.T) {
	// The greylisting-induced delay at a 300 s threshold is the MTA's
	// first retry offset: 10 min for sendmail, 15 for exim, 5 for
	// postfix, 6:40 for qmail, 5 for courier, 15 for exchange.
	want := map[string]time.Duration{
		"sendmail": 10 * time.Minute,
		"exim":     15 * time.Minute,
		"postfix":  5 * time.Minute,
		"qmail":    400 * time.Second,
		"courier":  5 * time.Minute,
		"exchange": 15 * time.Minute,
	}
	for _, s := range All() {
		delay, ok := s.DeliveryDelay(300 * time.Second)
		if !ok || delay != want[s.Name] {
			t.Errorf("%s: delay = %v (%v), want %v", s.Name, delay, ok, want[s.Name])
		}
	}
}

func TestRunGreylistedSixHourThreshold(t *testing.T) {
	// All six MTAs outlast a 6-hour threshold (their queues live 2-7
	// days), unlike aol.com and qq.com in Table III.
	for _, s := range All() {
		res := s.RunGreylisted(6 * time.Hour)
		if !res.Delivered {
			t.Errorf("%s: gave up before 6h threshold", s.Name)
			continue
		}
		if res.DeliveredAt < 6*time.Hour {
			t.Errorf("%s: delivered at %v, before the threshold", s.Name, res.DeliveredAt)
		}
	}
}

func TestExchangeBouncesPastQueueLifetime(t *testing.T) {
	// A threshold beyond the MTA's queue lifetime bounces the message:
	// exchange keeps mail only 2 days.
	res := Exchange().RunGreylisted(3 * 24 * time.Hour)
	if res.Delivered || !res.GaveUp {
		t.Fatalf("result = %+v, want gave up", res)
	}
	// qmail (7 days) survives the same threshold.
	if res := Qmail().RunGreylisted(3 * 24 * time.Hour); !res.Delivered {
		t.Fatalf("qmail result = %+v, want delivered", res)
	}
}

func TestRunStopsAtFirstAcceptance(t *testing.T) {
	calls := 0
	res := Postfix().Run(func(elapsed time.Duration) bool {
		calls++
		return elapsed >= 12*time.Minute
	})
	if !res.Delivered || res.DeliveredAt != 15*time.Minute {
		t.Fatalf("result = %+v", res)
	}
	if calls != res.Attempts {
		t.Fatalf("calls = %d, attempts = %d", calls, res.Attempts)
	}
	if len(res.AttemptTimes) != res.Attempts {
		t.Fatalf("attempt times = %v", res.AttemptTimes)
	}
}

// Property: for any threshold below the queue lifetime, the delivery
// delay is >= the threshold and attempts are strictly increasing in time.
func TestScheduleDeliveryProperty(t *testing.T) {
	f := func(thresholdMin uint16, which uint8) bool {
		s := All()[int(which)%6]
		threshold := time.Duration(thresholdMin%2000) * time.Minute // < 2 days min queue... 2000min=33h
		res := s.RunGreylisted(threshold)
		if !res.Delivered {
			return threshold > s.MaxQueueTime
		}
		if res.DeliveredAt < threshold {
			return false
		}
		for i := 1; i < len(res.AttemptTimes); i++ {
			if res.AttemptTimes[i] <= res.AttemptTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
