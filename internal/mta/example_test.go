package mta_test

import (
	"fmt"
	"time"

	"repro/internal/mta"
)

// Example shows the greylisting-induced delay for each Table IV MTA at
// the Postgrey default threshold: the delay is the MTA's first retry.
func Example() {
	for _, s := range mta.All() {
		delay, ok := s.DeliveryDelay(300 * time.Second)
		if !ok {
			fmt.Printf("%-9s bounces\n", s.Name)
			continue
		}
		fmt.Printf("%-9s delivers after %v\n", s.Name, delay)
	}

	// Output:
	// sendmail  delivers after 10m0s
	// exim      delivers after 15m0s
	// postfix   delivers after 5m0s
	// qmail     delivers after 6m40s
	// courier   delivers after 5m0s
	// exchange  delivers after 15m0s
}
