// Package dnsresolver implements the stub resolver used by every mail
// sender in the reproduction — benign MTAs, webmail models and spam-bot
// models alike — and by the adoption scanner.
//
// Its central operation is LookupMX: resolve a domain's MX records, sort
// them by preference (lower preference value = higher priority, RFC 5321
// §5.1), and resolve each exchanger to addresses. When the MX answer lacks
// glue (additional-section A records), the resolver performs the follow-up
// A lookups itself — this is the "parallel scanner to resolve the missing
// entries" the paper had to build for the scans.io dataset (Section III).
// When a domain has no MX records at all, RFC 5321 §5.1's implicit-MX rule
// applies: the domain's own A record is used as an MX with preference 0.
package dnsresolver

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Errors reported by lookups.
var (
	// ErrNXDomain reports that the queried name does not exist.
	ErrNXDomain = errors.New("dnsresolver: no such domain")
	// ErrNoRecords reports that the name exists but has no records of
	// the queried type (NODATA), and no fallback applies.
	ErrNoRecords = errors.New("dnsresolver: no records")
	// ErrServFail reports a server-side failure rcode.
	ErrServFail = errors.New("dnsresolver: server failure")
	// ErrUnresolvableMX reports that none of a domain's MX targets
	// resolved to an address — one of the DNS misconfiguration modes
	// counted in Figure 2.
	ErrUnresolvableMX = errors.New("dnsresolver: no MX target resolves")
)

// Transport delivers a query message and returns the response.
type Transport interface {
	Exchange(query *dnsmsg.Message) (*dnsmsg.Message, error)
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(*dnsmsg.Message) (*dnsmsg.Message, error)

// Exchange implements Transport.
func (f TransportFunc) Exchange(q *dnsmsg.Message) (*dnsmsg.Message, error) { return f(q) }

// WireExchanger is the in-process server side of a wire-level exchange;
// *dnsserver.Server implements it.
type WireExchanger interface {
	Exchange(query []byte) ([]byte, error)
}

// Direct returns a Transport that talks to srv in process, still passing
// through the full wire codec so that simulations exercise exactly the
// bytes a network deployment would.
func Direct(srv WireExchanger) Transport {
	return TransportFunc(func(q *dnsmsg.Message) (*dnsmsg.Message, error) {
		wire, err := q.Pack()
		if err != nil {
			return nil, fmt.Errorf("dnsresolver: pack: %w", err)
		}
		respWire, err := srv.Exchange(wire)
		if err != nil {
			return nil, err
		}
		resp, err := dnsmsg.Unpack(respWire)
		if err != nil {
			return nil, fmt.Errorf("dnsresolver: unpack: %w", err)
		}
		return resp, nil
	})
}

// UDP returns a Transport that sends queries over UDP to addr
// ("host:port") with the given per-query timeout.
func UDP(addr string, timeout time.Duration) Transport {
	return TransportFunc(func(q *dnsmsg.Message) (*dnsmsg.Message, error) {
		wire, err := q.Pack()
		if err != nil {
			return nil, err
		}
		conn, err := net.Dial("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("dnsresolver: dial %s: %w", addr, err)
		}
		defer conn.Close()
		if timeout > 0 {
			if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
				return nil, err
			}
		}
		if _, err := conn.Write(wire); err != nil {
			return nil, fmt.Errorf("dnsresolver: send: %w", err)
		}
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return nil, fmt.Errorf("dnsresolver: receive: %w", err)
			}
			resp, err := dnsmsg.Unpack(buf[:n])
			if err != nil {
				continue // garbage datagram; keep waiting until deadline
			}
			if resp.Header.ID != q.Header.ID {
				continue
			}
			return resp, nil
		}
	})
}

// MXHost is one resolved mail exchanger for a domain.
type MXHost struct {
	// Preference is the MX preference value; lower is tried first.
	Preference uint16
	// Host is the exchanger's domain name.
	Host string
	// Addrs are the exchanger's IPv4 addresses in dotted-quad form.
	// Empty means the target did not resolve.
	Addrs []string
	// Implicit marks an RFC 5321 implicit MX synthesized from the
	// domain's A record because no MX records exist.
	Implicit bool
}

// Resolver is a caching stub resolver over a Transport. The zero value is
// not usable; construct with New.
type Resolver struct {
	tr    Transport
	clock simtime.Clock
	// nextID provides deterministic query IDs; contents of IDs don't
	// matter for correctness, only uniqueness within a flight.
	nextID atomic.Uint32

	mu      sync.Mutex
	cache   map[cacheKey]cacheEntry
	queries uint64
	hits    uint64

	// DisableCache turns off positive caching (the scanner uses fresh
	// lookups so two scans two months apart see live data).
	DisableCache bool
	// NegativeTTL, when positive, caches NXDOMAIN answers for that long
	// (RFC 2308 negative caching). Zero disables it.
	NegativeTTL time.Duration
}

type cacheKey struct {
	name string
	t    dnsmsg.Type
}

type cacheEntry struct {
	msg      *dnsmsg.Message
	negative bool
	expires  time.Time
}

// New returns a Resolver using tr, timing cache entries with clock.
func New(tr Transport, clock simtime.Clock) *Resolver {
	if clock == nil {
		clock = simtime.Real{}
	}
	return &Resolver{tr: tr, clock: clock, cache: make(map[cacheKey]cacheEntry)}
}

// Stats reports total queries issued through the resolver and cache hits.
func (r *Resolver) Stats() (queries, cacheHits uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries, r.hits
}

// Query performs a raw lookup of (name, type), consulting the cache.
func (r *Resolver) Query(name string, t dnsmsg.Type) (*dnsmsg.Message, error) {
	name = dnsmsg.CanonicalName(name)
	key := cacheKey{name, t}
	now := r.clock.Now()

	r.mu.Lock()
	if !r.DisableCache {
		if e, ok := r.cache[key]; ok && now.Before(e.expires) {
			r.hits++
			r.mu.Unlock()
			if e.negative {
				return e.msg, fmt.Errorf("%w: %s (cached)", ErrNXDomain, name)
			}
			return e.msg, nil
		}
	}
	r.queries++
	id := uint16(r.nextID.Add(1))
	r.mu.Unlock()

	resp, err := r.tr.Exchange(dnsmsg.NewQuery(id, name, t))
	if err != nil {
		return nil, err
	}
	switch resp.Header.RCode {
	case dnsmsg.RCodeSuccess:
	case dnsmsg.RCodeNameError:
		if !r.DisableCache && r.NegativeTTL > 0 {
			r.mu.Lock()
			r.cache[key] = cacheEntry{msg: resp, negative: true, expires: now.Add(r.NegativeTTL)}
			r.mu.Unlock()
		}
		return resp, fmt.Errorf("%w: %s", ErrNXDomain, name)
	default:
		return resp, fmt.Errorf("%w: %s for %s", ErrServFail, resp.Header.RCode, name)
	}

	if !r.DisableCache {
		ttl := minTTL(resp)
		if ttl > 0 {
			r.mu.Lock()
			r.cache[key] = cacheEntry{msg: resp, expires: now.Add(time.Duration(ttl) * time.Second)}
			r.mu.Unlock()
		}
	}
	return resp, nil
}

func minTTL(m *dnsmsg.Message) uint32 {
	var ttl uint32
	first := true
	for _, rr := range m.Answers {
		if first || rr.TTL < ttl {
			ttl = rr.TTL
			first = false
		}
	}
	if first {
		return 0
	}
	return ttl
}

const maxCNAMEDepth = 8

// LookupA resolves name to IPv4 addresses, chasing CNAMEs.
func (r *Resolver) LookupA(name string) ([]string, error) {
	name = dnsmsg.CanonicalName(name)
	for depth := 0; depth < maxCNAMEDepth; depth++ {
		resp, err := r.Query(name, dnsmsg.TypeA)
		if err != nil {
			return nil, err
		}
		var addrs []string
		next := ""
		for _, rr := range resp.Answers {
			switch data := rr.Data.(type) {
			case dnsmsg.A:
				if rr.Name == name || next != "" {
					addrs = append(addrs, data.String())
				}
			case dnsmsg.CNAME:
				if rr.Name == name {
					next = data.Target
				}
			}
		}
		if len(addrs) > 0 {
			return addrs, nil
		}
		if next == "" {
			return nil, fmt.Errorf("%w: A for %s", ErrNoRecords, name)
		}
		name = next
	}
	return nil, fmt.Errorf("dnsresolver: CNAME chain too deep for %s", name)
}

// LookupMX resolves a domain's mail exchangers, sorted by preference
// (ascending) and, within equal preference, by host name for determinism.
// Glue from the additional section is used when present; glue-less targets
// are re-resolved with LookupA. Targets that fail to resolve are returned
// with empty Addrs so callers can observe partial misconfiguration; if no
// target resolves, ErrUnresolvableMX is returned alongside the list.
//
// When the domain has no MX records but does have an A record, an implicit
// MX per RFC 5321 §5.1 is returned.
func (r *Resolver) LookupMX(domain string) ([]MXHost, error) {
	domain = dnsmsg.CanonicalName(domain)
	resp, err := r.Query(domain, dnsmsg.TypeMX)
	if err != nil {
		return nil, err
	}

	glue := make(map[string][]string)
	for _, rr := range resp.Additional {
		if a, ok := rr.Data.(dnsmsg.A); ok {
			glue[rr.Name] = append(glue[rr.Name], a.String())
		}
	}

	var hosts []MXHost
	for _, rr := range resp.Answers {
		mx, ok := rr.Data.(dnsmsg.MX)
		if !ok {
			continue
		}
		hosts = append(hosts, MXHost{Preference: mx.Preference, Host: mx.Host, Addrs: glue[mx.Host]})
	}

	if len(hosts) == 0 {
		// Implicit MX: fall back to the domain's own address record.
		addrs, aErr := r.LookupA(domain)
		if aErr != nil {
			return nil, fmt.Errorf("%w: MX for %s", ErrNoRecords, domain)
		}
		return []MXHost{{Preference: 0, Host: domain, Addrs: addrs, Implicit: true}}, nil
	}

	sort.SliceStable(hosts, func(i, j int) bool {
		if hosts[i].Preference != hosts[j].Preference {
			return hosts[i].Preference < hosts[j].Preference
		}
		return hosts[i].Host < hosts[j].Host
	})

	anyResolved := false
	for i := range hosts {
		if len(hosts[i].Addrs) == 0 {
			if addrs, err := r.LookupA(hosts[i].Host); err == nil {
				hosts[i].Addrs = addrs
			}
		}
		if len(hosts[i].Addrs) > 0 {
			anyResolved = true
		}
	}
	if !anyResolved {
		return hosts, fmt.Errorf("%w: %s", ErrUnresolvableMX, domain)
	}
	return hosts, nil
}

// LookupMXTrace is LookupMX with the walk recorded into tr: one MX
// event per resolved host (preference, address count, implicit flag)
// or an MX error event when the walk fails. The hot LookupMX path is
// untouched; a nil trace adds only nil checks.
func (r *Resolver) LookupMXTrace(domain string, tr *trace.Trace) ([]MXHost, error) {
	hosts, err := r.LookupMX(domain)
	if tr != nil {
		if err != nil {
			tr.MXError(domain, err)
		}
		for _, h := range hosts {
			tr.MX(h.Host, int(h.Preference), len(h.Addrs), h.Implicit)
		}
	}
	return hosts, err
}

// FlushCache drops every cached answer.
func (r *Resolver) FlushCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[cacheKey]cacheEntry)
}

// Failover returns a Transport that tries each underlying transport in
// order until one succeeds — how stub resolvers use their resolver list.
// DNS-level errors in a successful exchange (NXDOMAIN etc.) are answers,
// not failures, and do not trigger failover.
func Failover(transports ...Transport) Transport {
	return TransportFunc(func(q *dnsmsg.Message) (*dnsmsg.Message, error) {
		var lastErr error
		for _, tr := range transports {
			resp, err := tr.Exchange(q)
			if err == nil {
				return resp, nil
			}
			lastErr = err
		}
		if lastErr == nil {
			lastErr = errors.New("dnsresolver: no transports configured")
		}
		return nil, fmt.Errorf("dnsresolver: all transports failed: %w", lastErr)
	})
}
