package dnsresolver

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dnsserver"
	"repro/internal/simtime"
)

// buildServer creates an authoritative server for foo.net with a nolisting
// MX layout (primary pref 0, secondary pref 15) plus assorted fixtures.
func buildServer(t *testing.T) *dnsserver.Server {
	t.Helper()
	z := dnsserver.NewZone("foo.net")
	z.MustAdd(dnsmsg.RR{Name: "foo.net", Type: dnsmsg.TypeMX, TTL: 300, Data: dnsmsg.MX{Preference: 15, Host: "smtp1.foo.net"}})
	z.MustAdd(dnsmsg.RR{Name: "foo.net", Type: dnsmsg.TypeMX, TTL: 300, Data: dnsmsg.MX{Preference: 0, Host: "smtp.foo.net"}})
	z.MustAdd(dnsmsg.RR{Name: "smtp.foo.net", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("1.2.3.4")})
	z.MustAdd(dnsmsg.RR{Name: "smtp1.foo.net", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("1.2.3.5")})
	z.MustAdd(dnsmsg.RR{Name: "www.foo.net", Type: dnsmsg.TypeCNAME, TTL: 300, Data: dnsmsg.CNAME{Target: "web.foo.net"}})
	z.MustAdd(dnsmsg.RR{Name: "web.foo.net", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("1.2.3.6")})

	// Domain with A but no MX: implicit-MX case.
	z2 := dnsserver.NewZone("implicit.example")
	z2.MustAdd(dnsmsg.RR{Name: "implicit.example", Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4("7.7.7.7")})

	// Domain whose MX target never resolves: misconfiguration.
	z3 := dnsserver.NewZone("broken.example")
	z3.MustAdd(dnsmsg.RR{Name: "broken.example", Type: dnsmsg.TypeMX, TTL: 300, Data: dnsmsg.MX{Preference: 10, Host: "ghost.broken.example"}})

	s := dnsserver.New()
	s.AddZone(z)
	s.AddZone(z2)
	s.AddZone(z3)
	return s
}

func newResolver(t *testing.T) (*Resolver, *dnsserver.Server, *simtime.Sim) {
	t.Helper()
	srv := buildServer(t)
	clock := simtime.NewSim(simtime.Epoch)
	return New(Direct(srv), clock), srv, clock
}

func TestLookupA(t *testing.T) {
	r, _, _ := newResolver(t)
	addrs, err := r.LookupA("smtp.foo.net")
	if err != nil {
		t.Fatalf("LookupA: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != "1.2.3.4" {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestLookupAChasesCNAME(t *testing.T) {
	r, _, _ := newResolver(t)
	addrs, err := r.LookupA("www.foo.net")
	if err != nil {
		t.Fatalf("LookupA: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != "1.2.3.6" {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestLookupANXDomain(t *testing.T) {
	r, _, _ := newResolver(t)
	_, err := r.LookupA("missing.foo.net")
	if !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want ErrNXDomain", err)
	}
}

func TestLookupMXSortedByPreference(t *testing.T) {
	r, _, _ := newResolver(t)
	hosts, err := r.LookupMX("foo.net")
	if err != nil {
		t.Fatalf("LookupMX: %v", err)
	}
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	if hosts[0].Host != "smtp.foo.net" || hosts[0].Preference != 0 {
		t.Fatalf("primary = %+v, want smtp.foo.net pref 0", hosts[0])
	}
	if hosts[1].Host != "smtp1.foo.net" || hosts[1].Preference != 15 {
		t.Fatalf("secondary = %+v", hosts[1])
	}
	if hosts[0].Addrs[0] != "1.2.3.4" || hosts[1].Addrs[0] != "1.2.3.5" {
		t.Fatalf("glue addrs = %v / %v", hosts[0].Addrs, hosts[1].Addrs)
	}
	if hosts[0].Implicit || hosts[1].Implicit {
		t.Fatal("explicit MX flagged implicit")
	}
}

func TestLookupMXWithoutGlueReResolves(t *testing.T) {
	// The paper's "parallel scanner": when the MX reply has no glue,
	// each exchanger needs its own A lookup.
	r, srv, _ := newResolver(t)
	srv.Zone("foo.net").SetNoGlue(true)
	hosts, err := r.LookupMX("foo.net")
	if err != nil {
		t.Fatalf("LookupMX: %v", err)
	}
	if hosts[0].Addrs[0] != "1.2.3.4" || hosts[1].Addrs[0] != "1.2.3.5" {
		t.Fatalf("re-resolved addrs = %v / %v", hosts[0].Addrs, hosts[1].Addrs)
	}
	// Glue-less resolution costs extra queries: 1 MX + 2 A.
	queries, _ := r.Stats()
	if queries != 3 {
		t.Fatalf("queries = %d, want 3 (MX + 2×A)", queries)
	}
}

func TestLookupMXImplicit(t *testing.T) {
	r, _, _ := newResolver(t)
	hosts, err := r.LookupMX("implicit.example")
	if err != nil {
		t.Fatalf("LookupMX: %v", err)
	}
	if len(hosts) != 1 || !hosts[0].Implicit {
		t.Fatalf("hosts = %+v, want one implicit MX", hosts)
	}
	if hosts[0].Preference != 0 || hosts[0].Host != "implicit.example" || hosts[0].Addrs[0] != "7.7.7.7" {
		t.Fatalf("implicit MX = %+v", hosts[0])
	}
}

func TestLookupMXUnresolvableTarget(t *testing.T) {
	r, _, _ := newResolver(t)
	hosts, err := r.LookupMX("broken.example")
	if !errors.Is(err, ErrUnresolvableMX) {
		t.Fatalf("err = %v, want ErrUnresolvableMX", err)
	}
	if len(hosts) != 1 || len(hosts[0].Addrs) != 0 {
		t.Fatalf("hosts = %+v", hosts)
	}
}

func TestLookupMXNXDomain(t *testing.T) {
	r, _, _ := newResolver(t)
	if _, err := r.LookupMX("unknown.example.zone"); err == nil {
		t.Fatal("LookupMX for unknown zone succeeded")
	}
}

func TestCacheHitWithinTTL(t *testing.T) {
	r, _, clock := newResolver(t)
	if _, err := r.LookupA("smtp.foo.net"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LookupA("smtp.foo.net"); err != nil {
		t.Fatal(err)
	}
	queries, hits := r.Stats()
	if queries != 1 || hits != 1 {
		t.Fatalf("stats = (%d queries, %d hits), want (1, 1)", queries, hits)
	}
	// Past the 300 s TTL the cache entry expires.
	clock.Advance(301 * time.Second)
	if _, err := r.LookupA("smtp.foo.net"); err != nil {
		t.Fatal(err)
	}
	queries, _ = r.Stats()
	if queries != 2 {
		t.Fatalf("queries after TTL expiry = %d, want 2", queries)
	}
}

func TestDisableCache(t *testing.T) {
	r, _, _ := newResolver(t)
	r.DisableCache = true
	r.LookupA("smtp.foo.net")
	r.LookupA("smtp.foo.net")
	queries, hits := r.Stats()
	if queries != 2 || hits != 0 {
		t.Fatalf("stats = (%d, %d), want (2, 0)", queries, hits)
	}
}

func TestFlushCache(t *testing.T) {
	r, _, _ := newResolver(t)
	r.LookupA("smtp.foo.net")
	r.FlushCache()
	r.LookupA("smtp.foo.net")
	queries, hits := r.Stats()
	if queries != 2 || hits != 0 {
		t.Fatalf("stats after flush = (%d, %d), want (2, 0)", queries, hits)
	}
}

func TestUDPTransportEndToEnd(t *testing.T) {
	srv := buildServer(t)
	addr, err := srv.ListenAndServeUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServeUDP: %v", err)
	}
	defer srv.Close()

	r := New(UDP(addr.String(), 2*time.Second), simtime.Real{})
	hosts, err := r.LookupMX("foo.net")
	if err != nil {
		t.Fatalf("LookupMX over UDP: %v", err)
	}
	if len(hosts) != 2 || hosts[0].Host != "smtp.foo.net" {
		t.Fatalf("hosts = %+v", hosts)
	}
}

func TestTransportErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	r := New(TransportFunc(func(*dnsmsg.Message) (*dnsmsg.Message, error) { return nil, boom }), simtime.Real{})
	if _, err := r.LookupA("x.example"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want transport error", err)
	}
}

func TestServFailSurfaced(t *testing.T) {
	r := New(TransportFunc(func(q *dnsmsg.Message) (*dnsmsg.Message, error) {
		resp := q.Reply()
		resp.Header.RCode = dnsmsg.RCodeServerFailure
		return resp, nil
	}), simtime.Real{})
	if _, err := r.LookupA("x.example"); !errors.Is(err, ErrServFail) {
		t.Fatalf("err = %v, want ErrServFail", err)
	}
}

func TestEqualPreferenceDeterministicOrder(t *testing.T) {
	srv := dnsserver.New()
	z := dnsserver.NewZone("eq.example")
	z.MustAdd(dnsmsg.RR{Name: "eq.example", Type: dnsmsg.TypeMX, TTL: 60, Data: dnsmsg.MX{Preference: 10, Host: "mxb.eq.example"}})
	z.MustAdd(dnsmsg.RR{Name: "eq.example", Type: dnsmsg.TypeMX, TTL: 60, Data: dnsmsg.MX{Preference: 10, Host: "mxa.eq.example"}})
	z.MustAdd(dnsmsg.RR{Name: "mxa.eq.example", Type: dnsmsg.TypeA, TTL: 60, Data: dnsmsg.MustIPv4("2.2.2.1")})
	z.MustAdd(dnsmsg.RR{Name: "mxb.eq.example", Type: dnsmsg.TypeA, TTL: 60, Data: dnsmsg.MustIPv4("2.2.2.2")})
	srv.AddZone(z)
	r := New(Direct(srv), simtime.Real{})
	hosts, err := r.LookupMX("eq.example")
	if err != nil {
		t.Fatal(err)
	}
	if hosts[0].Host != "mxa.eq.example" || hosts[1].Host != "mxb.eq.example" {
		t.Fatalf("equal-pref order = %v, want host-name tiebreak", hosts)
	}
}

func TestFailoverTransport(t *testing.T) {
	srv := buildServer(t)
	boom := errors.New("primary resolver down")
	failing := TransportFunc(func(*dnsmsg.Message) (*dnsmsg.Message, error) { return nil, boom })

	r := New(Failover(failing, Direct(srv)), simtime.Real{})
	addrs, err := r.LookupA("smtp.foo.net")
	if err != nil {
		t.Fatalf("LookupA through failover: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != "1.2.3.4" {
		t.Fatalf("addrs = %v", addrs)
	}

	// All transports down: the last error is surfaced.
	r2 := New(Failover(failing, failing), simtime.Real{})
	if _, err := r2.LookupA("smtp.foo.net"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped transport error", err)
	}

	// No transports configured.
	r3 := New(Failover(), simtime.Real{})
	if _, err := r3.LookupA("smtp.foo.net"); err == nil {
		t.Fatal("empty failover succeeded")
	}

	// NXDOMAIN is an answer, not a failure: it must NOT trigger failover.
	calls := 0
	counting := TransportFunc(func(q *dnsmsg.Message) (*dnsmsg.Message, error) {
		calls++
		resp := q.Reply()
		resp.Header.RCode = dnsmsg.RCodeNameError
		return resp, nil
	})
	r4 := New(Failover(counting, Direct(srv)), simtime.Real{})
	if _, err := r4.LookupA("smtp.foo.net"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want NXDOMAIN from first transport", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestNegativeCaching(t *testing.T) {
	r, _, clock := newResolver(t)
	r.NegativeTTL = 300 * time.Second

	if _, err := r.LookupA("ghost.foo.net"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.LookupA("ghost.foo.net"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("cached err = %v", err)
	}
	queries, hits := r.Stats()
	if queries != 1 || hits != 1 {
		t.Fatalf("stats = (%d, %d), want NXDOMAIN served from cache", queries, hits)
	}
	// The negative entry expires.
	clock.Advance(301 * time.Second)
	r.LookupA("ghost.foo.net")
	queries, _ = r.Stats()
	if queries != 2 {
		t.Fatalf("queries after expiry = %d", queries)
	}
	// Without NegativeTTL, every miss hits the server.
	r2, _, _ := newResolver(t)
	r2.LookupA("ghost.foo.net")
	r2.LookupA("ghost.foo.net")
	q2, h2 := r2.Stats()
	if q2 != 2 || h2 != 0 {
		t.Fatalf("default stats = (%d, %d), want no negative caching", q2, h2)
	}
}
