// Package mtaqueue implements a real (if small) queueing MTA on top of
// the SMTP client: submitted messages enter a queue, delivery is
// attempted over actual SMTP connections, transient failures (greylisting
// deferrals, unreachable hosts) are retried on the MTA's retransmission
// schedule, permanent failures and queue-lifetime expiry bounce.
//
// Where package mta models Table IV's schedules *analytically*, this
// package executes them against live servers — so the reproduction can
// cross-validate the two: the delay the analytic model predicts for a
// greylisted sendmail is exactly the delay a queueing sendmail measures
// against a real greylisting server (see the tests).
package mtaqueue

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsresolver"
	"repro/internal/mta"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
	"repro/internal/trace"
)

// errDetail renders err for a trace event ("" when nil).
func errDetail(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Status is a queued message's lifecycle state.
type Status int

// Statuses.
const (
	// StatusQueued: awaiting (re)delivery.
	StatusQueued Status = iota + 1
	// StatusDelivered: accepted by the destination.
	StatusDelivered
	// StatusBounced: permanently failed or queue lifetime expired.
	StatusBounced
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusDelivered:
		return "delivered"
	case StatusBounced:
		return "bounced"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// BounceReason explains a bounce.
type BounceReason int

// Bounce reasons.
const (
	// BounceNone: the message did not bounce.
	BounceNone BounceReason = iota
	// BouncePermanent: the destination rejected with a 5xx.
	BouncePermanent
	// BounceExpired: the queue lifetime ran out (Table IV's MAX QUEUE
	// TIME column; the fate of Exchange mail behind multi-day
	// greylisting thresholds).
	BounceExpired
)

// QueuedMessage is the queue's view of one submission.
type QueuedMessage struct {
	ID          int
	Domain      string
	Status      Status
	Bounce      BounceReason
	EnqueuedAt  time.Time
	Attempts    int
	DeliveredAt time.Time
	// Delay is DeliveredAt - EnqueuedAt for delivered messages.
	Delay time.Duration
	// LastError is the most recent failure.
	LastError error
}

// Config assembles an MTA.
type Config struct {
	// Name labels the MTA in logs.
	Name string
	// Schedule is the retransmission policy (one of mta.All() or a
	// custom one).
	Schedule mta.Schedule
	// HeloName is announced to destination servers.
	HeloName string
	// Resolver resolves destination MX records.
	Resolver *dnsresolver.Resolver
	// Dialer opens the SMTP connections.
	Dialer smtpclient.Dialer
	// Sched drives the retry timers (virtual time).
	Sched *simtime.Scheduler
	// Tracer, when non-nil, gives every submitted message an
	// end-to-end trace: MX walk, dials, server-side verbs and greylist
	// verdicts, plus queue events for each scheduled retry and the
	// terminal delivered/bounced outcome.
	Tracer *trace.Tracer
	// TraceTags labels the traces (Family defaults to the MTA name).
	TraceTags trace.Tags
	// RetryObserver, when non-nil, receives every scheduled retry's
	// backoff interval — the observatory's mtaqueue retry-interval
	// sketch feed (obs.Observatory.RetrySink). Called with the queue
	// lock held; it must be fast and non-blocking.
	RetryObserver func(backoff time.Duration)
}

// MTA is a queueing mail transfer agent.
type MTA struct {
	cfg     Config
	offsets []time.Duration

	inst atomic.Pointer[instruments]

	mu     sync.Mutex
	nextID int
	queue  map[int]*queueEntry
}

type queueEntry struct {
	msg    smtpclient.Message
	record QueuedMessage
	tr     *trace.Trace
}

// New validates the configuration and returns an MTA.
func New(cfg Config) (*MTA, error) {
	if cfg.Resolver == nil || cfg.Dialer == nil || cfg.Sched == nil {
		return nil, errors.New("mtaqueue: Resolver, Dialer and Sched are required")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	if cfg.HeloName == "" {
		cfg.HeloName = "mta.local"
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Schedule.Name
	}
	if cfg.Tracer != nil && cfg.TraceTags.Family == "" {
		cfg.TraceTags.Family = cfg.Name
	}
	return &MTA{
		cfg:     cfg,
		offsets: cfg.Schedule.AttemptTimes(0),
		queue:   make(map[int]*queueEntry),
	}, nil
}

// Submit enqueues a message for the recipient domain and schedules its
// first delivery attempt immediately. It returns the queue ID.
func (m *MTA) Submit(domain string, msg smtpclient.Message) int {
	if msg.HeloName == "" {
		msg.HeloName = m.cfg.HeloName
	}
	now := m.cfg.Sched.Clock().Now()
	var tr *trace.Trace
	if m.cfg.Tracer != nil {
		rcpt := domain
		if len(msg.To) > 0 {
			rcpt = msg.To[0]
		}
		tr = m.cfg.Tracer.StartMessage(m.cfg.TraceTags, rcpt, m.cfg.Sched.Clock().Now)
		tr.Queue("enqueued", domain, 0)
	}
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.queue[id] = &queueEntry{
		msg: msg,
		record: QueuedMessage{
			ID: id, Domain: domain, Status: StatusQueued, EnqueuedAt: now,
		},
		tr: tr,
	}
	m.mu.Unlock()
	if inst := m.inst.Load(); inst != nil {
		inst.submitted.Inc()
	}
	m.cfg.Sched.After(0, m.cfg.Name+" first attempt", func() { m.attempt(id, 0) })
	return id
}

// attempt performs delivery attempt index k for message id.
func (m *MTA) attempt(id, k int) {
	m.mu.Lock()
	entry, ok := m.queue[id]
	if !ok || entry.record.Status != StatusQueued {
		m.mu.Unlock()
		return
	}
	msg := entry.msg
	domain := entry.record.Domain
	tr := entry.tr
	entry.record.Attempts++
	m.mu.Unlock()

	tr.SetTry(k)
	receipt := smtpclient.DeliverMXTrace(m.cfg.Resolver, m.cfg.Dialer, domain, msg, tr)
	now := m.cfg.Sched.Clock().Now()

	inst := m.inst.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	switch receipt.Outcome {
	case smtpclient.Delivered:
		entry.record.Status = StatusDelivered
		entry.record.DeliveredAt = now
		entry.record.Delay = now.Sub(entry.record.EnqueuedAt)
		entry.record.LastError = nil
		if inst != nil {
			inst.delivered.Inc()
		}
		tr.Finish("delivered")
	case smtpclient.PermanentFailure:
		entry.record.Status = StatusBounced
		entry.record.Bounce = BouncePermanent
		entry.record.LastError = receipt.LastError
		if inst != nil {
			inst.bounced.Inc()
		}
		tr.Queue("bounce", errDetail(receipt.LastError), 0)
		tr.Finish("bounced")
	default: // transient or unreachable: retry per schedule
		entry.record.LastError = receipt.LastError
		next := k + 1
		if next >= len(m.offsets) {
			entry.record.Status = StatusBounced
			entry.record.Bounce = BounceExpired
			if inst != nil {
				inst.bounced.Inc()
			}
			tr.Queue("bounce", "queue lifetime expired", 0)
			tr.Finish("bounced")
			return
		}
		at := entry.record.EnqueuedAt.Add(m.offsets[next])
		if inst != nil {
			inst.retries.Inc()
			inst.backoffSeconds.Observe(m.offsets[next].Seconds())
		}
		if m.cfg.RetryObserver != nil {
			m.cfg.RetryObserver(m.offsets[next])
		}
		tr.Queue("retry-scheduled", errDetail(receipt.LastError), at.Sub(now))
		m.cfg.Sched.At(at, m.cfg.Name+" retry", func() { m.attempt(id, next) })
	}
}

// Message returns the current record for a queue ID.
func (m *MTA) Message(id int) (QueuedMessage, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entry, ok := m.queue[id]
	if !ok {
		return QueuedMessage{}, false
	}
	return entry.record, true
}

// Messages returns all records, in submission order.
func (m *MTA) Messages() []QueuedMessage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QueuedMessage, 0, len(m.queue))
	for id := 1; id <= m.nextID; id++ {
		if e, ok := m.queue[id]; ok {
			out = append(out, e.record)
		}
	}
	return out
}

// Summary counts messages by status.
func (m *MTA) Summary() (queued, delivered, bounced int) {
	for _, r := range m.Messages() {
		switch r.Status {
		case StatusQueued:
			queued++
		case StatusDelivered:
			delivered++
		case StatusBounced:
			bounced++
		}
	}
	return queued, delivered, bounced
}
