package mtaqueue

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/greylist"
	"repro/internal/mta"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
)

// world wires a defended destination domain and an MTA environment.
type world struct {
	net      *netsim.Network
	dns      *dnsserver.Server
	clock    *simtime.Sim
	sched    *simtime.Scheduler
	resolver *dnsresolver.Resolver
	domain   *core.Domain
}

func newWorld(t *testing.T, defense core.Defense, threshold time.Duration) *world {
	t.Helper()
	w := &world{
		net:   netsim.New(),
		dns:   dnsserver.New(),
		clock: simtime.NewSim(simtime.Epoch),
	}
	w.sched = simtime.NewScheduler(w.clock)
	w.resolver = dnsresolver.New(dnsresolver.Direct(w.dns), w.clock)
	w.resolver.DisableCache = true

	policy := greylist.DefaultPolicy()
	if threshold > 0 {
		policy.Threshold = threshold
	}
	// The expiry tests outlast Postgrey's 2-day retry window; widen it
	// so the only lifetime in play is the MTA's own queue time.
	policy.RetryWindow = 30 * 24 * time.Hour
	d, err := core.New(core.Config{
		Domain:         "dest.example",
		PrimaryIP:      "10.0.0.1",
		SecondaryIP:    "10.0.0.2",
		Defense:        defense,
		GreylistPolicy: policy,
	}, core.Deps{Net: w.net, DNS: w.dns, Clock: w.clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	w.domain = d
	return w
}

func (w *world) newMTA(t *testing.T, schedule mta.Schedule) *MTA {
	t.Helper()
	m, err := New(Config{
		Schedule: schedule,
		HeloName: "mta.sender.example",
		Resolver: w.resolver,
		Dialer:   &smtpclient.SimDialer{Net: w.net, LocalIP: "192.0.2.50"},
		Sched:    w.sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testMsg(i int) smtpclient.Message {
	return smtpclient.Message{
		From: fmt.Sprintf("alice%d@sender.example", i),
		To:   []string{fmt.Sprintf("user%d@dest.example", i)},
		Data: []byte("Subject: q\r\n\r\nqueued mail\r\n"),
	}
}

func TestImmediateDeliveryWithoutDefense(t *testing.T) {
	w := newWorld(t, core.DefenseNone, 0)
	m := w.newMTA(t, mta.Postfix())
	id := m.Submit("dest.example", testMsg(1))
	w.sched.Run()

	rec, ok := m.Message(id)
	if !ok || rec.Status != StatusDelivered {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Attempts != 1 || rec.Delay != 0 {
		t.Fatalf("record = %+v, want first-attempt delivery", rec)
	}
	if len(w.domain.Inbox()) != 1 {
		t.Fatalf("inbox = %d", len(w.domain.Inbox()))
	}
}

// TestLiveDelaysMatchAnalyticModel is the cross-validation: for every
// Table IV schedule, the delay measured by the real queueing MTA against
// a real greylisting server equals the analytic prediction.
func TestLiveDelaysMatchAnalyticModel(t *testing.T) {
	for _, schedule := range mta.All() {
		schedule := schedule
		t.Run(schedule.Name, func(t *testing.T) {
			w := newWorld(t, core.DefenseGreylisting, 300*time.Second)
			m := w.newMTA(t, schedule)
			id := m.Submit("dest.example", testMsg(1))
			w.sched.Run()

			rec, _ := m.Message(id)
			if rec.Status != StatusDelivered {
				t.Fatalf("record = %+v", rec)
			}
			want, ok := schedule.DeliveryDelay(300 * time.Second)
			if !ok {
				t.Fatal("analytic model says undeliverable")
			}
			if rec.Delay != want {
				t.Fatalf("live delay %v != analytic %v", rec.Delay, want)
			}
			if rec.Attempts != 2 {
				t.Fatalf("attempts = %d, want 2", rec.Attempts)
			}
		})
	}
}

func TestPermanentFailureBouncesImmediately(t *testing.T) {
	w := newWorld(t, core.DefenseNone, 0)
	m := w.newMTA(t, mta.Postfix())
	msg := testMsg(1)
	msg.To = []string{"user@other-domain.example"} // relay denied -> 550
	id := m.Submit("dest.example", msg)
	w.sched.Run()

	rec, _ := m.Message(id)
	if rec.Status != StatusBounced || rec.Bounce != BouncePermanent {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Attempts != 1 {
		t.Fatalf("attempts = %d (no retries after 5xx)", rec.Attempts)
	}
}

func TestQueueLifetimeExpiry(t *testing.T) {
	// Exchange keeps mail 2 days; a 3-day greylisting threshold
	// guarantees a bounce (Table IV + the paper's threshold analysis).
	w := newWorld(t, core.DefenseGreylisting, 3*24*time.Hour)
	m := w.newMTA(t, mta.Exchange())
	id := m.Submit("dest.example", testMsg(1))
	w.sched.Run()

	rec, _ := m.Message(id)
	if rec.Status != StatusBounced || rec.Bounce != BounceExpired {
		t.Fatalf("record = %+v", rec)
	}
	// 2 days / 15 min = 192 retries + the initial attempt.
	if rec.Attempts != 193 {
		t.Fatalf("attempts = %d, want 193", rec.Attempts)
	}
	if len(w.domain.Inbox()) != 0 {
		t.Fatal("expired message delivered")
	}
}

func TestOutageRecovery(t *testing.T) {
	w := newWorld(t, core.DefenseNone, 0)
	m := w.newMTA(t, mta.Sendmail())
	// Take both MX hosts down before the first attempt.
	w.net.SetHostDown("10.0.0.1", true)
	w.net.SetHostDown("10.0.0.2", true)
	id := m.Submit("dest.example", testMsg(1))
	w.sched.RunFor(25 * time.Minute) // initial + 2 failed retries

	rec, _ := m.Message(id)
	if rec.Status != StatusQueued || rec.Attempts < 2 {
		t.Fatalf("mid-outage record = %+v", rec)
	}
	w.net.SetHostDown("10.0.0.1", false)
	w.net.SetHostDown("10.0.0.2", false)
	w.sched.Run()

	rec, _ = m.Message(id)
	if rec.Status != StatusDelivered {
		t.Fatalf("post-recovery record = %+v", rec)
	}
	if rec.Delay < 25*time.Minute {
		t.Fatalf("delay = %v, should reflect the outage", rec.Delay)
	}
}

func TestManyMessagesSummary(t *testing.T) {
	w := newWorld(t, core.DefenseGreylisting, 300*time.Second)
	m := w.newMTA(t, mta.Postfix())
	const n = 20
	for i := 0; i < n; i++ {
		m.Submit("dest.example", testMsg(i))
	}
	w.sched.Run()
	queued, delivered, bounced := m.Summary()
	if queued != 0 || delivered != n || bounced != 0 {
		t.Fatalf("summary = (%d, %d, %d)", queued, delivered, bounced)
	}
	if got := len(m.Messages()); got != n {
		t.Fatalf("messages = %d", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	w := newWorld(t, core.DefenseNone, 0)
	bad := mta.Schedule{Name: "broken"} // no queue time
	if _, err := New(Config{
		Schedule: bad,
		Resolver: w.resolver,
		Dialer:   &smtpclient.SimDialer{Net: w.net, LocalIP: "192.0.2.50"},
		Sched:    w.sched,
	}); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

func TestUnknownMessageID(t *testing.T) {
	w := newWorld(t, core.DefenseNone, 0)
	m := w.newMTA(t, mta.Postfix())
	if _, ok := m.Message(42); ok {
		t.Fatal("unknown ID found")
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusQueued.String() != "queued" || StatusDelivered.String() != "delivered" ||
		StatusBounced.String() != "bounced" || Status(9).String() == "" {
		t.Fatal("Status strings")
	}
}
