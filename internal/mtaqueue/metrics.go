package mtaqueue

import "repro/internal/metrics"

// instruments holds the delivery-path metric handles; nil until Register
// is called.
type instruments struct {
	submitted      *metrics.Counter
	delivered      *metrics.Counter
	bounced        *metrics.Counter
	retries        *metrics.Counter
	backoffSeconds *metrics.Histogram
}

// backoffBuckets spans MTA retransmission schedules: Table IV's retry
// intervals run from minutes (qmail's 400s-class steps) to many hours
// (Exchange's last attempts), so the latency buckets top out at 4 days.
var backoffBuckets = []float64{
	60, 300, 900, 1800, 3600, 2 * 3600, 4 * 3600, 8 * 3600,
	24 * 3600, 2 * 24 * 3600, 4 * 24 * 3600,
}

// Register exports the queue's counters into reg, labelled with the
// MTA's name so several queues (one per modelled MTA) share a registry:
//
//	mtaqueue_messages_submitted_total{mta}  submissions
//	mtaqueue_messages_delivered_total{mta}  accepted deliveries
//	mtaqueue_messages_bounced_total{mta}    permanent failures + expiries
//	mtaqueue_retries_total{mta}             retry attempts scheduled
//	mtaqueue_backoff_seconds{mta}           scheduled retry backoff (from
//	                                        enqueue to the retry attempt)
//	mtaqueue_depth{mta}                     messages currently queued
//
// The backoff histogram runs on the *virtual* clock: it records the
// schedule's own delays (Table IV), not wall time.
func (m *MTA) Register(reg *metrics.Registry) {
	name := m.cfg.Name
	reg.GaugeFunc("mtaqueue_depth",
		"Messages currently queued awaiting (re)delivery.",
		func() float64 {
			queued, _, _ := m.Summary()
			return float64(queued)
		}, "mta", name)
	inst := &instruments{
		submitted: reg.Counter("mtaqueue_messages_submitted_total",
			"Messages submitted to the queue.", "mta", name),
		delivered: reg.Counter("mtaqueue_messages_delivered_total",
			"Messages accepted by the destination.", "mta", name),
		bounced: reg.Counter("mtaqueue_messages_bounced_total",
			"Messages permanently failed or expired from the queue.", "mta", name),
		retries: reg.Counter("mtaqueue_retries_total",
			"Retry attempts scheduled after transient failures.", "mta", name),
		backoffSeconds: reg.Histogram("mtaqueue_backoff_seconds",
			"Scheduled backoff from enqueue to each retry attempt (virtual time).",
			backoffBuckets, "mta", name),
	}
	m.inst.Store(inst)
}
