package mtaqueue

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mta"
)

// TestMetricsCountDeliveryLifecycle submits against a greylisting
// destination: one deferral, one retry, one delivery — each visible in
// the exported counters, labelled with the MTA's name.
func TestMetricsCountDeliveryLifecycle(t *testing.T) {
	w := newWorld(t, core.DefenseGreylisting, 300*time.Second)
	m := w.newMTA(t, mta.Postfix())
	reg := metrics.NewRegistry()
	m.Register(reg)

	m.Submit("dest.example", testMsg(1))
	w.sched.Run()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mtaqueue_messages_submitted_total{mta="postfix"} 1` + "\n",
		`mtaqueue_messages_delivered_total{mta="postfix"} 1` + "\n",
		`mtaqueue_messages_bounced_total{mta="postfix"} 0` + "\n",
		`mtaqueue_retries_total{mta="postfix"} 1` + "\n",
		`mtaqueue_backoff_seconds_count{mta="postfix"} 1` + "\n",
		`mtaqueue_depth{mta="postfix"} 0` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
