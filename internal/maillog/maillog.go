// Package maillog reproduces the paper's real-deployment dataset
// (Section V-B, Figure 5): four months of anonymized greylist logs from
// the mail server of the Computer Science department of Università degli
// Studi di Milano, running greylisting with a 300 s threshold.
//
// The paper's dataset contains, for each greylisted message, the
// timestamps of its delivery attempts; Figure 5 is the CDF of the delays
// those messages suffered — strikingly slow: even at a 5-minute
// threshold only about half the mail arrives within ~10 minutes and some
// messages take beyond 50.
//
// We cannot have the university's logs, so Generate synthesizes an
// equivalent four-month log by driving a real greylisting engine with
// the sender mixture that produces exactly that shape: standard MTAs
// with the Table IV schedules (first retries between 5 and 15 minutes),
// slow custom senders (newsletter and notification software with
// 30-120-minute retry timers), multi-IP server farms whose address
// rotation restarts the greylisting clock, and the two bot behaviours
// (fire-and-forget, which never delivers, and Kelihos-style
// retransmitters). The analyzer side — Episodes, DeliveryDelays,
// Fig5CDF — works on any log with this schema, synthetic or real.
package maillog

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/greylist"
	"repro/internal/mta"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// Action is what the greylister did with an attempt.
type Action int

// Actions.
const (
	// ActionDeferred: the attempt got a 451.
	ActionDeferred Action = iota + 1
	// ActionPassed: the attempt was accepted.
	ActionPassed
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionDeferred:
		return "deferred"
	case ActionPassed:
		return "passed"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Entry is one anonymized log line: when an attempt for a (hashed)
// message key happened and whether it was deferred or passed.
type Entry struct {
	Time   time.Time
	Key    string
	Action Action
}

// String renders the line format: "RFC3339 key action".
func (e Entry) String() string {
	return fmt.Sprintf("%s %s %s", e.Time.UTC().Format(time.RFC3339), e.Key, e.Action)
}

// ParseEntry parses one log line.
func ParseEntry(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return Entry{}, fmt.Errorf("maillog: %q: want 3 fields", line)
	}
	ts, err := time.Parse(time.RFC3339, fields[0])
	if err != nil {
		return Entry{}, fmt.Errorf("maillog: %q: %w", line, err)
	}
	var action Action
	switch fields[2] {
	case "deferred":
		action = ActionDeferred
	case "passed":
		action = ActionPassed
	default:
		return Entry{}, fmt.Errorf("maillog: %q: unknown action %q", line, fields[2])
	}
	return Entry{Time: ts, Key: fields[1], Action: action}, nil
}

// WriteLog writes entries as text lines.
func WriteLog(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if _, err := bw.WriteString(e.String() + "\n"); err != nil {
			return fmt.Errorf("maillog: write: %w", err)
		}
	}
	return bw.Flush()
}

// ReadLog parses a log written by WriteLog, skipping blank lines.
func ReadLog(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := ParseEntry(line)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("maillog: read: %w", err)
	}
	return out, nil
}

// SenderClass labels the synthetic sender mixture.
type SenderClass int

// Sender classes.
const (
	ClassStandardMTA SenderClass = iota + 1
	ClassSlowCustom
	ClassMultiIP
	ClassFireAndForget
	ClassRetryingBot
)

// String implements fmt.Stringer.
func (c SenderClass) String() string {
	switch c {
	case ClassStandardMTA:
		return "standard-mta"
	case ClassSlowCustom:
		return "slow-custom"
	case ClassMultiIP:
		return "multi-ip"
	case ClassFireAndForget:
		return "fire-and-forget"
	case ClassRetryingBot:
		return "retrying-bot"
	default:
		return fmt.Sprintf("SenderClass(%d)", int(c))
	}
}

// GeneratorConfig parameterizes the synthetic deployment.
type GeneratorConfig struct {
	// Start is the log's first day (the paper's logs start January
	// 2015).
	Start time.Time
	// Days is the observation length (the paper's four months ≈ 120).
	Days int
	// MessagesPerDay is the greylisted-message arrival rate.
	MessagesPerDay int
	// Threshold is the greylisting threshold (the department used
	// 300 s).
	Threshold time.Duration
	// Seed drives all randomness.
	Seed int64
	// Mixture weights (normalized internally).
	WeightStandardMTA float64
	WeightSlowCustom  float64
	WeightMultiIP     float64
	WeightFireForget  float64
	WeightRetryingBot float64
}

// DefaultGeneratorConfig returns the mixture that reproduces Figure 5's
// shape at the department's 300 s threshold.
func DefaultGeneratorConfig(seed int64) GeneratorConfig {
	return GeneratorConfig{
		Start:             time.Date(2015, time.January, 1, 0, 0, 0, 0, time.UTC),
		Days:              120,
		MessagesPerDay:    200,
		Threshold:         300 * time.Second,
		Seed:              seed,
		WeightStandardMTA: 0.62,
		WeightSlowCustom:  0.16,
		WeightMultiIP:     0.08,
		WeightFireForget:  0.09,
		WeightRetryingBot: 0.05,
	}
}

// Summary reports what the generator produced.
type Summary struct {
	Messages  int
	Entries   int
	PerClass  map[SenderClass]int
	Delivered int
	Lost      int
}

// messagePlan is one synthetic message's sender behaviour.
type messagePlan struct {
	arrival time.Time
	key     string
	class   SenderClass
	offsets []time.Duration // attempt offsets from arrival; [0] == 0
	ips     []string        // client IP per attempt
	sender  string
	rcpt    string
}

// Generate synthesizes the deployment log: every message's attempts are
// played through one shared greylisting engine on a virtual clock, in
// global time order, and each check is logged.
func Generate(cfg GeneratorConfig) ([]Entry, Summary, error) {
	if cfg.Days <= 0 || cfg.MessagesPerDay <= 0 {
		return nil, Summary{}, fmt.Errorf("maillog: empty generation window")
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 300 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Days * cfg.MessagesPerDay
	period := time.Duration(cfg.Days) * 24 * time.Hour

	weights := []float64{
		cfg.WeightStandardMTA, cfg.WeightSlowCustom, cfg.WeightMultiIP,
		cfg.WeightFireForget, cfg.WeightRetryingBot,
	}
	classes := []SenderClass{
		ClassStandardMTA, ClassSlowCustom, ClassMultiIP,
		ClassFireAndForget, ClassRetryingBot,
	}
	wsum := 0.0
	for _, w := range weights {
		wsum += w
	}
	if wsum <= 0 {
		return nil, Summary{}, fmt.Errorf("maillog: zero mixture weights")
	}

	summary := Summary{PerClass: make(map[SenderClass]int)}
	plans := make([]messagePlan, 0, total)
	for i := 0; i < total; i++ {
		pick := rng.Float64() * wsum
		class := classes[len(classes)-1]
		for k, w := range weights {
			if pick < w {
				class = classes[k]
				break
			}
			pick -= w
		}
		summary.PerClass[class]++
		p := planMessage(cfg, rng, i, class)
		p.arrival = cfg.Start.Add(time.Duration(rng.Int63n(int64(period))))
		plans = append(plans, p)
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].arrival.Before(plans[j].arrival) })

	clock := simtime.NewSim(cfg.Start)
	sched := simtime.NewScheduler(clock)
	policy := greylist.DefaultPolicy()
	policy.Threshold = cfg.Threshold
	policy.AutoWhitelistAfter = 0 // keep every message's fate independent
	g := greylist.New(policy, clock)

	var entries []Entry
	delivered := 0
	for i := range plans {
		p := &plans[i]
		var attempt func(k int)
		attempt = func(k int) {
			triplet := greylist.Triplet{ClientIP: p.ips[k], Sender: p.sender, Recipient: p.rcpt}
			v := g.Check(triplet)
			action := ActionDeferred
			if v.Decision == greylist.Pass {
				action = ActionPassed
			}
			// Log timestamps are second-granularity, like real MTA logs.
			entries = append(entries, Entry{Time: clock.Now().Truncate(time.Second), Key: p.key, Action: action})
			if action == ActionPassed {
				delivered++
				return
			}
			if k+1 < len(p.offsets) {
				sched.At(p.arrival.Add(p.offsets[k+1]), "retry", func() { attempt(k + 1) })
			}
		}
		sched.At(p.arrival, "first attempt", func() { attempt(0) })
	}
	sched.Run()

	summary.Messages = total
	summary.Entries = len(entries)
	summary.Delivered = delivered
	summary.Lost = total - delivered
	return entries, summary, nil
}

// planMessage draws one message's attempt schedule and IP usage.
func planMessage(cfg GeneratorConfig, rng *rand.Rand, id int, class SenderClass) messagePlan {
	p := messagePlan{
		key:    fmt.Sprintf("m%08d", id),
		class:  class,
		sender: fmt.Sprintf("s%d@src%d.example", id, id%977),
		rcpt:   fmt.Sprintf("u%d@dept.example", id%211),
	}
	baseIP := fmt.Sprintf("10.%d.%d.%d", (id>>14)&63, (id>>7)&127, id&127)

	switch class {
	case ClassStandardMTA:
		schedules := mta.All()
		s := schedules[rng.Intn(len(schedules))]
		// Only the first few attempts matter at a 300 s threshold.
		times := s.AttemptTimes(12 * time.Hour)
		if len(times) > 6 {
			times = times[:6]
		}
		p.offsets = jitterOffsets(times, rng, 30*time.Second)
	case ClassSlowCustom:
		first := time.Duration(30+rng.Intn(90)) * time.Minute
		p.offsets = []time.Duration{0, first, first * 2, first * 4}
	case ClassMultiIP:
		// A small farm: attempts every ~5 minutes, rotating 2-4
		// addresses before reusing the first.
		pool := 2 + rng.Intn(3)
		var offs []time.Duration
		for k := 0; k <= pool+1; k++ {
			offs = append(offs, time.Duration(k)*(5*time.Minute+time.Duration(rng.Intn(120))*time.Second))
		}
		p.offsets = offs
		for k := range offs {
			slot := k
			if k >= pool {
				slot = 0
			}
			p.ips = append(p.ips, fmt.Sprintf("%s%d", baseIP[:len(baseIP)-1], slot))
		}
	case ClassFireAndForget:
		p.offsets = []time.Duration{0}
	case ClassRetryingBot:
		p.offsets = []time.Duration{
			0,
			time.Duration(300+rng.Intn(300)) * time.Second,
			time.Duration(4500+rng.Intn(1000)) * time.Second,
		}
	}
	if p.ips == nil {
		p.ips = make([]string, len(p.offsets))
		for k := range p.ips {
			p.ips[k] = baseIP
		}
	}
	return p
}

// jitterOffsets adds uniform jitter to every offset but the first.
func jitterOffsets(offsets []time.Duration, rng *rand.Rand, spread time.Duration) []time.Duration {
	out := make([]time.Duration, len(offsets))
	for i, o := range offsets {
		if i == 0 {
			continue
		}
		out[i] = o + time.Duration(rng.Int63n(int64(spread)))
	}
	copy(out[:1], offsets[:1])
	return out
}

// Episode is one message's life in the log.
type Episode struct {
	Key          string
	FirstAttempt time.Time
	Attempts     int
	Delivered    bool
	DeliveredAt  time.Time
}

// Delay returns the greylisting-induced delivery delay.
func (e Episode) Delay() time.Duration {
	if !e.Delivered {
		return 0
	}
	return e.DeliveredAt.Sub(e.FirstAttempt)
}

// Episodes groups log entries by key into per-message episodes. Entries
// must be in time order per key (they are, in generated and real logs).
func Episodes(entries []Entry) []Episode {
	byKey := make(map[string]*Episode)
	var order []string
	for _, e := range entries {
		ep, ok := byKey[e.Key]
		if !ok {
			ep = &Episode{Key: e.Key, FirstAttempt: e.Time}
			byKey[e.Key] = ep
			order = append(order, e.Key)
		}
		if ep.Delivered {
			continue
		}
		ep.Attempts++
		if e.Action == ActionPassed {
			ep.Delivered = true
			ep.DeliveredAt = e.Time
		}
	}
	out := make([]Episode, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// DeliveryDelays extracts the delays of delivered, actually-greylisted
// messages (attempts > 1), Figure 5's population.
func DeliveryDelays(entries []Entry) []time.Duration {
	var delays []time.Duration
	for _, ep := range Episodes(entries) {
		if ep.Delivered && ep.Attempts > 1 {
			delays = append(delays, ep.Delay())
		}
	}
	return delays
}

// Fig5CDF builds Figure 5's CDF from a log.
func Fig5CDF(entries []Entry) stats.CDF {
	return stats.NewDurationCDF(DeliveryDelays(entries))
}

// LostFraction is the fraction of greylisted messages never delivered
// (fire-and-forget senders and give-ups).
func LostFraction(entries []Entry) float64 {
	eps := Episodes(entries)
	if len(eps) == 0 {
		return 0
	}
	lost := 0
	for _, ep := range eps {
		if !ep.Delivered {
			lost++
		}
	}
	return float64(lost) / float64(len(eps))
}
