package maillog

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func generateDefault(t *testing.T) ([]Entry, Summary) {
	t.Helper()
	cfg := DefaultGeneratorConfig(1)
	cfg.Days = 30 // a month is plenty for the tests
	cfg.MessagesPerDay = 120
	entries, summary, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return entries, summary
}

func TestEntryRoundTrip(t *testing.T) {
	e := Entry{
		Time:   time.Date(2015, 2, 3, 4, 5, 6, 0, time.UTC),
		Key:    "m00000042",
		Action: ActionDeferred,
	}
	line := e.String()
	if line != "2015-02-03T04:05:06Z m00000042 deferred" {
		t.Fatalf("line = %q", line)
	}
	got, err := ParseEntry(line)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(e.Time) || got.Key != e.Key || got.Action != e.Action {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestParseEntryErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"only two fields",
		"notatime key deferred",
		"2015-02-03T04:05:06Z key exploded",
		"2015-02-03T04:05:06Z key deferred extra",
	} {
		if _, err := ParseEntry(line); err == nil {
			t.Errorf("ParseEntry(%q) succeeded", line)
		}
	}
}

func TestWriteReadLog(t *testing.T) {
	entries, _ := generateDefault(t)
	var buf bytes.Buffer
	if err := WriteLog(&buf, entries[:500]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("read %d entries", len(got))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestReadLogSkipsBlankAndRejectsGarbage(t *testing.T) {
	got, err := ReadLog(strings.NewReader("\n2015-02-03T04:05:06Z k passed\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ReadLog(strings.NewReader("garbage line\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, _, err := Generate(GeneratorConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := DefaultGeneratorConfig(1)
	cfg.WeightStandardMTA = 0
	cfg.WeightSlowCustom = 0
	cfg.WeightMultiIP = 0
	cfg.WeightFireForget = 0
	cfg.WeightRetryingBot = 0
	if _, _, err := Generate(cfg); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func TestGenerateSummary(t *testing.T) {
	entries, summary := generateDefault(t)
	if summary.Messages != 30*120 {
		t.Fatalf("messages = %d", summary.Messages)
	}
	if summary.Entries != len(entries) {
		t.Fatalf("entries = %d vs %d", summary.Entries, len(entries))
	}
	if summary.Delivered+summary.Lost != summary.Messages {
		t.Fatalf("delivered %d + lost %d != %d", summary.Delivered, summary.Lost, summary.Messages)
	}
	// Fire-and-forget senders (≈9%) never deliver.
	lostFrac := float64(summary.Lost) / float64(summary.Messages)
	if lostFrac < 0.05 || lostFrac > 0.15 {
		t.Fatalf("lost fraction = %.3f, want ≈0.09", lostFrac)
	}
	total := 0
	for _, n := range summary.PerClass {
		total += n
	}
	if total != summary.Messages {
		t.Fatalf("class counts sum to %d", total)
	}
}

func TestEntriesAreTimeOrdered(t *testing.T) {
	entries, _ := generateDefault(t)
	for i := 1; i < len(entries); i++ {
		if entries[i].Time.Before(entries[i-1].Time) {
			t.Fatalf("entries out of order at %d: %v then %v", i, entries[i-1].Time, entries[i].Time)
		}
	}
}

func TestEpisodes(t *testing.T) {
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	entries := []Entry{
		{base, "a", ActionDeferred},
		{base.Add(10 * time.Minute), "a", ActionPassed},
		{base.Add(time.Minute), "b", ActionDeferred},
		{base, "c", ActionPassed}, // whitelisted straight through
	}
	eps := Episodes(entries)
	if len(eps) != 3 {
		t.Fatalf("episodes = %d", len(eps))
	}
	byKey := map[string]Episode{}
	for _, ep := range eps {
		byKey[ep.Key] = ep
	}
	a := byKey["a"]
	if !a.Delivered || a.Delay() != 10*time.Minute || a.Attempts != 2 {
		t.Fatalf("a = %+v", a)
	}
	if byKey["b"].Delivered {
		t.Fatal("b delivered")
	}
	if byKey["b"].Delay() != 0 {
		t.Fatal("undelivered delay != 0")
	}
	c := byKey["c"]
	if !c.Delivered || c.Attempts != 1 {
		t.Fatalf("c = %+v", c)
	}
	// c was never deferred so it is not part of Figure 5's population.
	delays := DeliveryDelays(entries)
	if len(delays) != 1 || delays[0] != 10*time.Minute {
		t.Fatalf("delays = %v", delays)
	}
}

// TestFig5Shape pins the qualitative Figure 5 findings: the CDF rises
// slowly — about half the greylisted mail needs ~10 minutes or more
// despite the 300 s threshold — and a real tail stretches past 50
// minutes.
func TestFig5Shape(t *testing.T) {
	entries, _ := generateDefault(t)
	cdf := Fig5CDF(entries)
	if cdf.N() < 1000 {
		t.Fatalf("only %d delivered greylisted messages", cdf.N())
	}
	// Nothing beats the threshold.
	if cdf.Min() < 300 {
		t.Fatalf("min delay %.0f s below the 300 s threshold", cdf.Min())
	}
	// "only half of the messages get delivered in less than 10
	// minutes": P(≤10 min) must be near 0.5, definitely below 0.75.
	p10 := cdf.P(600)
	if p10 < 0.3 || p10 > 0.75 {
		t.Fatalf("P(delay <= 10min) = %.3f, want roughly one half", p10)
	}
	// "some messages are delivered with over 50 minutes of delay".
	p50 := 1 - cdf.P(50*60)
	if p50 < 0.03 {
		t.Fatalf("P(delay > 50min) = %.3f, want a visible tail", p50)
	}
	// "and some even beyond that".
	if cdf.Max() <= 60*60 {
		t.Fatalf("max delay = %.0f s, want beyond an hour", cdf.Max())
	}
}

func TestFig5FasterThanMalwareCDF(t *testing.T) {
	// Section V-B: the benign CDF "increases much slower than the curve
	// we observed for malware" — Kelihos masses its retries right at
	// 300-600 s, while the benign mix needs minutes to tens of minutes.
	entries, _ := generateDefault(t)
	benign := Fig5CDF(entries)
	// P(benign <= 600 s) is mid-range; Kelihos' was 1.0 by 600 s.
	if benign.P(600) > 0.9 {
		t.Fatalf("benign CDF at 600s = %.3f — as fast as malware, shape lost", benign.P(600))
	}
}

func TestLostFraction(t *testing.T) {
	entries, summary := generateDefault(t)
	got := LostFraction(entries)
	want := float64(summary.Lost) / float64(summary.Messages)
	if diff := got - want; diff > 0.001 || diff < -0.001 {
		t.Fatalf("LostFraction = %.4f, summary says %.4f", got, want)
	}
	if LostFraction(nil) != 0 {
		t.Fatal("LostFraction(nil) != 0")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := DefaultGeneratorConfig(42)
	cfg.Days = 5
	cfg.MessagesPerDay = 50
	a, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestSenderClassStrings(t *testing.T) {
	for c := ClassStandardMTA; c <= ClassRetryingBot; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "SenderClass(") {
			t.Errorf("class %d string = %q", c, s)
		}
	}
	if ActionDeferred.String() != "deferred" || ActionPassed.String() != "passed" {
		t.Error("Action strings")
	}
}

// Property: for any generator seed, the analyzer invariants hold — every
// delivered episode's delay is >= the threshold minus jitter (in fact >=
// threshold, since the engine enforces it), attempts are >= 1, and
// delivered+lost episodes partition the messages.
func TestGeneratorAnalyzerInvariantsProperty(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := DefaultGeneratorConfig(seed)
		cfg.Days = 3
		cfg.MessagesPerDay = 80
		entries, summary, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eps := Episodes(entries)
		if len(eps) != summary.Messages {
			t.Fatalf("seed %d: %d episodes for %d messages", seed, len(eps), summary.Messages)
		}
		delivered := 0
		for _, ep := range eps {
			if ep.Attempts < 1 {
				t.Fatalf("seed %d: episode with %d attempts", seed, ep.Attempts)
			}
			if ep.Delivered {
				delivered++
				if ep.Attempts > 1 && ep.Delay() < cfg.Threshold {
					t.Fatalf("seed %d: delay %v below threshold %v", seed, ep.Delay(), cfg.Threshold)
				}
			}
		}
		if delivered != summary.Delivered {
			t.Fatalf("seed %d: delivered %d vs summary %d", seed, delivered, summary.Delivered)
		}
	}
}
